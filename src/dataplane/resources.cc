#include "dataplane/resources.h"

#include <cmath>

namespace redplane::dp {

const char* ResourceName(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kMatchCrossbar: return "Match Crossbar";
    case ResourceKind::kMeterAlu: return "Meter ALU";
    case ResourceKind::kGateway: return "Gateway";
    case ResourceKind::kSram: return "SRAM";
    case ResourceKind::kTcam: return "TCAM";
    case ResourceKind::kVliw: return "VLIW Instruction";
    case ResourceKind::kHashBits: return "Hash Bits";
    case ResourceKind::kNumKinds: break;
  }
  return "?";
}

double PipelineBudget::Total(ResourceKind kind) const {
  const double n = stages;
  switch (kind) {
    case ResourceKind::kMatchCrossbar: return match_crossbar_bits * n;
    case ResourceKind::kMeterAlu: return meter_alus * n;
    case ResourceKind::kGateway: return gateways * n;
    case ResourceKind::kSram: return sram_bytes * n;
    case ResourceKind::kTcam: return tcam_bits * n;
    case ResourceKind::kVliw: return vliw_slots * n;
    case ResourceKind::kHashBits: return hash_bits * n;
    case ResourceKind::kNumKinds: break;
  }
  return 0;
}

PipelineBudget PipelineBudget::Tofino() { return PipelineBudget{}; }

void ResourceModel::Charge(ResourceKind kind, double amount) {
  usage_[static_cast<int>(kind)] += amount;
}

void ResourceModel::AddExactTable(const std::string& name,
                                  std::uint64_t entries,
                                  std::uint32_t key_bits,
                                  std::uint32_t value_bits) {
  objects_.push_back("exact:" + name);
  // Hash-way SRAM layout carries ~20% overhead over raw key+value bits.
  Charge(ResourceKind::kSram,
         static_cast<double>(entries) * (key_bits + value_bits) / 8.0 * 1.2);
  Charge(ResourceKind::kMatchCrossbar, key_bits);
  // Way-select hash: ~13 bits per way, 4 ways.
  Charge(ResourceKind::kHashBits, 52);
  Charge(ResourceKind::kVliw, 1);
}

void ResourceModel::AddTernaryTable(const std::string& name,
                                    std::uint64_t entries,
                                    std::uint32_t key_bits,
                                    std::uint32_t value_bits) {
  objects_.push_back("ternary:" + name);
  // TCAM is allocated in 44-bit slices.
  const double slices = std::ceil(static_cast<double>(key_bits) / 44.0);
  Charge(ResourceKind::kTcam, static_cast<double>(entries) * slices * 44.0);
  Charge(ResourceKind::kSram, static_cast<double>(entries) * value_bits / 8.0);
  Charge(ResourceKind::kMatchCrossbar, key_bits);
  Charge(ResourceKind::kVliw, 1);
}

void ResourceModel::AddRegisterArray(const std::string& name,
                                     std::uint64_t entries,
                                     std::uint32_t width_bits) {
  objects_.push_back("register:" + name);
  // Word-aligned SRAM with ~10% ECC/alignment overhead.
  Charge(ResourceKind::kSram,
         static_cast<double>(entries) * width_bits / 8.0 * 1.1);
  Charge(ResourceKind::kMeterAlu, 1);   // one stateful ALU per array
  Charge(ResourceKind::kMatchCrossbar, 128);  // index + operand bus
  Charge(ResourceKind::kHashBits, 16);  // index hash
  Charge(ResourceKind::kVliw, 1);
}

void ResourceModel::AddGateways(const std::string& name, std::uint32_t count) {
  objects_.push_back("gateway:" + name);
  Charge(ResourceKind::kGateway, count);
}

void ResourceModel::AddHashComputation(const std::string& name,
                                       std::uint32_t bits) {
  objects_.push_back("hash:" + name);
  Charge(ResourceKind::kHashBits, bits);
}

void ResourceModel::AddActions(const std::string& name,
                               std::uint32_t vliw_slots) {
  objects_.push_back("actions:" + name);
  Charge(ResourceKind::kVliw, vliw_slots);
}

std::vector<std::pair<std::string, double>> ResourceModel::FractionOfBudget(
    const PipelineBudget& budget) const {
  std::vector<std::pair<std::string, double>> out;
  for (int i = 0; i < static_cast<int>(ResourceKind::kNumKinds); ++i) {
    const auto kind = static_cast<ResourceKind>(i);
    const double total = budget.Total(kind);
    out.emplace_back(ResourceName(kind), total > 0 ? usage_[i] / total : 0.0);
  }
  return out;
}

void PlaceRedPlaneObjects(ResourceModel& model,
                          std::uint64_t concurrent_flows) {
  // Per-flow bookkeeping (§7.4: "lease expiration time, current sequence
  // number, and last acknowledged sequence number"), indexed by a flow slot
  // resolved through a key-digest table.
  model.AddExactTable("flow_key_digest", concurrent_flows, /*key=*/48,
                      /*value=*/20);
  model.AddRegisterArray("lease_expiry", concurrent_flows, 32);
  model.AddRegisterArray("current_seq", concurrent_flows, 32);
  model.AddRegisterArray("last_acked_seq", concurrent_flows, 32);
  model.AddRegisterArray("lease_renew_timer", concurrent_flows / 64, 64);

  // State-store addressing: flow hash -> server IP/UDP port (§5.1.2).
  model.AddExactTable("state_store_map", 256, /*key=*/32, /*value=*/96);
  // Protocol message dispatch on the RedPlane header type field.
  model.AddExactTable("msg_type_dispatch", 32, /*key=*/16, /*value=*/8);
  // Lease-state management actions keyed on flow slot + lease status.
  model.AddExactTable("lease_mgmt", 1024, /*key=*/104, /*value=*/32);

  // Range matches for ack processing and request timeout checks (§7.4:
  // "RedPlane uses TCAM to implement acknowledgment processing and request
  // timeout management, which need range matches").
  // Range keys are truncated to fit one 44-bit TCAM slice (timestamps and
  // sequence numbers are compared on their low-order bits, as the real P4
  // implementation does with range-match shifts).
  model.AddTernaryTable("req_timeout_check", 8192, /*key=*/40, /*value=*/8);
  model.AddTernaryTable("ack_seq_window", 8192, /*key=*/40, /*value=*/8);

  // Control-flow branches: request vs ack vs normal packet, lease present,
  // buffering decisions, retransmission path, snapshot path.
  model.AddGateways("redplane_branches", 19);

  // Flow-key hash used to pick the state-store shard.
  model.AddHashComputation("store_shard_hash", 64);
  model.AddHashComputation("seq_gen_hash", 36);

  // Header encap/decap for protocol messages and piggybacked outputs.
  model.AddActions("redplane_hdr_encap_decap", 12);
}

}  // namespace redplane::dp
