// The switch control plane and its ASIC-to-CPU PCIe channel.
//
// Match-table entries (and some other resources) can only be installed via
// the switch CPU, reached over a PCIe channel whose bandwidth is orders of
// magnitude below the ASIC's forwarding rate (§2, "Primer").  This module
// models that channel as a FIFO server with configurable per-operation
// latency and bandwidth, which is what makes the checkpoint/rollback
// baselines of §2.2 misbehave and adds the tail latency visible in Fig. 8.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace redplane::dp {

struct ControlPlaneConfig {
  /// One-way ASIC<->CPU PCIe latency.
  SimDuration pcie_latency = Microseconds(4);
  /// PCIe channel bandwidth in bits/second (O(10 Gbps) per the paper).
  double pcie_bandwidth_bps = 10e9;
  /// CPU time to process one table update (driver + SDK overheads dominate;
  /// tens of microseconds on real switch CPUs).
  SimDuration table_op_cpu_time = Microseconds(60);
};

/// FIFO model of the control-plane channel.  Work items are serialized over
/// the PCIe link, processed by the CPU, and completed back on the ASIC side.
class ControlPlane {
 public:
  ControlPlane(sim::Simulator& sim, ControlPlaneConfig config)
      : sim_(sim), config_(config) {}

  /// Names this channel in trace exports (set by the owning switch).
  void SetTraceName(std::string name) { trace_.SetName(std::move(name)); }

  /// Submits a data-to-CPU operation carrying `bytes` of data; `on_complete`
  /// runs when the CPU has processed it and the completion has crossed back
  /// to the ASIC.  Returns the predicted completion time.
  SimTime Submit(std::size_t bytes, std::function<void()> on_complete);

  /// Queue length in operations (for tests / reporting).
  std::size_t Pending() const { return pending_; }

  const ControlPlaneConfig& config() const { return config_; }

  /// Total operations completed.
  std::uint64_t completed() const { return completed_; }

  /// Drops queued work (switch failure).
  void Reset();

 private:
  sim::Simulator& sim_;
  ControlPlaneConfig config_;
  SimTime busy_until_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t epoch_ = 0;
  obs::TraceHandle trace_;
};

}  // namespace redplane::dp
