// Egress-to-egress packet mirroring with truncation.
//
// RedPlane's retransmission mechanism (§5.2) keeps a truncated copy of each
// in-flight replication request circulating between egress and the traffic
// manager until the matching ack arrives.  The model tracks those copies in
// a buffer charged against the switch's packet buffer and reports the peak
// occupancy (reproducing Fig. 15).
//
// Storage is struct-of-arrays over stable slot indices — the software
// analogue of the per-entry register arrays the paper sizes in §7.4: the
// sequence-number array, the timestamp arrays, and the payload handles are
// separate dense vectors, so the retransmit path touches only the lanes it
// needs.  Slots are addressed by Handle{slot, gen}; the generation bumps on
// release, making a stale handle (entry acked while its retransmit timer
// was in flight) a detectable no-op.  Entries of one flow are linked into
// an intrusive chain reached through an open-addressed digest index, so a
// cumulative ack touches O(entries of that flow), never the whole table —
// there is deliberately no whole-table scan on any per-packet or per-timer
// path.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "net/buffer.h"
#include "net/flow.h"
#include "obs/tracer.h"

namespace redplane::dp {

class MirrorTable {
 public:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// Stable reference to a mirrored entry.  `gen` must match the slot's
  /// current generation for the handle to be live; a released-and-reused
  /// slot bumps the generation, so stale handles are safely detectable.
  struct Handle {
    std::uint32_t slot = kNilSlot;
    std::uint32_t gen = 0;
  };

  /// `truncate_to` caps the bytes retained per mirrored packet, modeling the
  /// ASIC's mirror truncation; Tofino supports truncating to the first N
  /// bytes, which RedPlane sets to cover only the replication header.
  MirrorTable(std::string name, std::size_t truncate_to)
      : name_(std::move(name)), truncate_to_(truncate_to), trace_(name_) {}

  const std::string& name() const { return name_; }

  /// Reconfigures the truncation length (set once at program install).
  void set_truncate_to(std::size_t n) { truncate_to_ = n; }
  std::size_t truncate_to() const { return truncate_to_; }

  /// Mirrors a request: stores the truncated copy `data` keyed by (key,
  /// seq).  `data` is clipped to the table's truncation length (a zero-copy
  /// slice of the encoded request).  Returns the entry's handle for the
  /// owner's retransmit timer.
  Handle Mirror(const net::PartitionKey& key, std::uint64_t seq,
                net::BufferView data, SimTime now);

  /// Drops every mirrored copy for `key` with seq <= `acked_seq` (an ack
  /// for sequence n confirms all earlier writes of the flow too).
  /// `on_release(Handle, timer)` runs for each dropped entry so the owner
  /// can cancel the entry's retransmit timer.
  template <typename OnRelease>
  void Acknowledge(const net::PartitionKey& key, std::uint64_t acked_seq,
                   OnRelease&& on_release) {
    if (count_ == 0) return;
    const std::size_t cell = FindCell(net::HashPartitionKey(key));
    if (cell == SIZE_MAX) return;
    std::size_t cleared = 0;
    std::uint32_t slot = idx_head_[cell];
    while (slot != kNilSlot) {
      const std::uint32_t next = fnext_[slot];
      // The chain is per digest; confirm the key (collisions cost a
      // compare, never correctness) and apply the cumulative-ack filter.
      if (seq_[slot] <= acked_seq && keys_[slot] == key) {
        on_release(Handle{slot, gen_[slot]}, timer_[slot]);
        ReleaseSlot(slot, cell);
        ++cleared;
      }
      slot = next;
    }
    if (cleared > 0 && trace_.armed()) {
      trace_.Emit(obs::Ev::kMirrorCleared, net::HashPartitionKey(key),
                  acked_seq, static_cast<double>(cleared));
    }
  }
  void Acknowledge(const net::PartitionKey& key, std::uint64_t acked_seq) {
    Acknowledge(key, acked_seq, [](Handle, std::uint64_t) {});
  }

  /// Visits every live entry's handle.  Template visitor: no std::function
  /// indirection on the (bench-only, post-refactor) scan path.
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (std::uint32_t s = 0; s < live_.size(); ++s) {
      if (live_[s] != 0) fn(Handle{s, gen_[s]});
    }
  }

  /// --- per-entry lanes (handle must be live; see Alive()) ---
  bool Alive(Handle h) const {
    return h.slot < live_.size() && live_[h.slot] != 0 &&
           gen_[h.slot] == h.gen;
  }
  const net::PartitionKey& key(Handle h) const { return keys_[h.slot]; }
  std::uint64_t seq(Handle h) const { return seq_[h.slot]; }
  const net::BufferView& data(Handle h) const { return data_[h.slot]; }
  SimTime enqueued_at(Handle h) const { return enqueued_[h.slot]; }
  SimTime last_sent_at(Handle h) const { return last_sent_[h.slot]; }
  void set_last_sent_at(Handle h, SimTime t) { last_sent_[h.slot] = t; }
  /// Retransmissions already performed for this entry (the per-entry lane
  /// that replaced the switch's side map of retransmit counters).
  std::uint32_t retx_count(Handle h) const { return retx_[h.slot]; }
  void BumpRetx(Handle h) { ++retx_[h.slot]; }
  /// Owner-managed retransmit-timer id (an opaque sim::EventId).
  std::uint64_t timer(Handle h) const { return timer_[h.slot]; }
  void set_timer(Handle h, std::uint64_t id) { timer_[h.slot] = id; }

  /// Digest-index health for the load-factor / max-probe gauges.
  struct IndexStats {
    std::size_t capacity = 0;
    std::size_t used = 0;
    std::size_t max_probe = 0;  // longest probe chain over occupied cells
  };
  /// O(index capacity); sampled by the fleet time-series exporter, never on
  /// the packet path.
  IndexStats IndexStatsNow() const;

  /// Current buffer occupancy in bytes.
  std::size_t OccupancyBytes() const { return occupancy_; }
  /// High-water mark since construction/reset.
  std::size_t PeakOccupancyBytes() const { return peak_; }
  std::size_t NumEntries() const { return count_; }

  void ResetPeak() { peak_ = occupancy_; }

  /// Clears everything (switch failure); `on_release(Handle, timer)` runs
  /// per entry so the owner can cancel retransmit timers in one pass.
  template <typename OnRelease>
  void Reset(OnRelease&& on_release) {
    for (std::uint32_t s = 0; s < live_.size(); ++s) {
      if (live_[s] == 0) continue;
      on_release(Handle{s, gen_[s]}, timer_[s]);
      data_[s].clear();
      live_[s] = 0;
      ++gen_[s];
      fnext_[s] = free_head_;
      free_head_ = s;
    }
    idx_digest_.assign(idx_digest_.size(), 0);
    idx_head_.assign(idx_head_.size(), kNilSlot);
    idx_used_ = 0;
    count_ = 0;
    occupancy_ = 0;
    peak_ = 0;
  }
  void Reset() {
    Reset([](Handle, std::uint64_t) {});
  }

 private:
  /// Index cell holding `digest`, or SIZE_MAX when absent.
  std::size_t FindCell(std::uint64_t digest) const;
  /// Index cell holding `digest`, inserting an empty chain if absent
  /// (grows + rehashes the index at 70% load).
  std::size_t FindOrInsertCell(std::uint64_t digest);
  /// Unlinks `slot` from its flow chain (index cell `cell`), erasing the
  /// cell via backward-shift when the chain empties, and frees the slot.
  void ReleaseSlot(std::uint32_t slot, std::size_t cell);
  void EraseCell(std::size_t cell);
  void GrowIndex();

  std::string name_;
  std::size_t truncate_to_;
  obs::TraceHandle trace_;

  /// Entry lanes (parallel, stable indices).
  std::vector<net::PartitionKey> keys_;
  std::vector<std::uint64_t> seq_;
  std::vector<net::BufferView> data_;
  std::vector<SimTime> enqueued_;
  std::vector<SimTime> last_sent_;
  std::vector<std::uint32_t> retx_;
  std::vector<std::uint64_t> timer_;
  std::vector<std::uint32_t> gen_;
  std::vector<std::uint8_t> live_;
  /// Intrusive per-flow chain links; fnext_ doubles as the free list.
  std::vector<std::uint32_t> fprev_;
  std::vector<std::uint32_t> fnext_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t count_ = 0;

  /// Open-addressed digest index (linear probe, power-of-two capacity,
  /// backward-shift deletion): digest -> chain head slot.
  std::vector<std::uint64_t> idx_digest_;
  std::vector<std::uint32_t> idx_head_;
  std::size_t idx_used_ = 0;

  std::size_t occupancy_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace redplane::dp
