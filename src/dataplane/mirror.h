// Egress-to-egress packet mirroring with truncation.
//
// RedPlane's retransmission mechanism (§5.2) keeps a truncated copy of each
// in-flight replication request circulating between egress and the traffic
// manager until the matching ack arrives.  The model tracks those copies in a
// buffer charged against the switch's packet buffer, reports the peak
// occupancy (reproducing Fig. 15), and lets the owner iterate entries on each
// recirculation interval to decide retransmission.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>

#include "common/types.h"
#include "net/buffer.h"
#include "net/flow.h"
#include "obs/tracer.h"

namespace redplane::dp {

/// One mirrored (truncated) request held in the traffic manager.
struct MirroredEntry {
  net::PartitionKey key;
  std::uint64_t seq = 0;
  /// The truncated copy itself (replication header + state value, no
  /// piggybacked output); what a retransmission resends.  A view sharing
  /// the request's encode-once buffer — truncation is a slice, not a copy.
  net::BufferView data;
  /// Timestamp metadata carried by the mirror copy (for timeout checks).
  SimTime enqueued_at = 0;
  SimTime last_sent_at = 0;

  std::size_t bytes() const { return data.size(); }
};

class MirrorSession {
 public:
  /// `truncate_to` caps the bytes retained per mirrored packet, modeling the
  /// ASIC's mirror truncation; Tofino supports truncating to the first N
  /// bytes, which RedPlane sets to cover only the replication header.
  MirrorSession(std::string name, std::size_t truncate_to)
      : name_(std::move(name)), truncate_to_(truncate_to), trace_(name_) {}

  const std::string& name() const { return name_; }

  /// Reconfigures the truncation length (set once at program install).
  void set_truncate_to(std::size_t n) { truncate_to_ = n; }
  std::size_t truncate_to() const { return truncate_to_; }

  /// Mirrors a request: stores the truncated copy `data` keyed by (key,
  /// seq).  `data` is clipped to the session's truncation length (a
  /// zero-copy slice of the encoded request).
  void Mirror(const net::PartitionKey& key, std::uint64_t seq,
              net::BufferView data, SimTime now);

  /// Drops every mirrored copy for `key` with seq <= `acked_seq` (an ack for
  /// sequence n confirms all earlier writes of the flow too).
  void Acknowledge(const net::PartitionKey& key, std::uint64_t acked_seq);

  /// Visits each live entry; the visitor may mutate `last_sent_at`.
  void ForEach(const std::function<void(MirroredEntry&)>& fn);

  /// Current buffer occupancy in bytes.
  std::size_t OccupancyBytes() const { return occupancy_; }
  /// High-water mark since construction/reset.
  std::size_t PeakOccupancyBytes() const { return peak_; }
  std::size_t NumEntries() const { return entries_.size(); }

  void ResetPeak() { peak_ = occupancy_; }
  /// Clears everything (switch failure).
  void Reset();

 private:
  std::string name_;
  std::size_t truncate_to_;
  obs::TraceHandle trace_;
  std::list<MirroredEntry> entries_;
  std::size_t occupancy_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace redplane::dp
