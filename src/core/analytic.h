// Analytic (fluid) throughput model for scale experiments.
//
// The paper's Fig. 12/13 inject 207.6 Mpps, far beyond what a packet-level
// discrete-event simulation can process; the authors themselves supplement
// the testbed with an "analytical model-based simulation" for scale (§7.2).
// This model computes the sustainable forwarding rate as the tightest of
// three bottlenecks: the fabric link rate, the switch pipeline rate, and the
// state-store service rate divided by the fraction of packets that must
// synchronously visit the store.  Protocol bytes (requests + echoed
// responses) share fabric links with original traffic, which the model
// charges explicitly.  Small packet-level simulations validate the model's
// ranking and crossover behaviour in the test suite.
#pragma once

#include <cstdint>

namespace redplane::core {

struct AnalyticConfig {
  /// Offered load in packets/second.
  double offered_pps = 207.6e6;
  /// Original packet size in bytes (64 B in the paper's experiments).
  double packet_bytes = 64;
  /// Bottleneck fabric link rate in bits/second (the aggregation-to-core
  /// link in the testbed; it caps forwarding at ~122.5 Mpps for 64 B).
  double link_bps = 100e9;
  /// Per-store-server NIC rate for the switch<->store path, which in the
  /// testbed is disjoint from the data bottleneck link (aggregation->ToR->
  /// store server vs aggregation->core).
  double store_link_bps = 100e9;
  /// Switch pipeline forwarding capacity in packets/second.
  double switch_pps = 4.8e9;
  /// Per-state-store-server request service rate (requests/second).
  double store_rps = 35e6;
  /// Number of state-store shards serving this workload.
  int num_stores = 1;
  /// Fraction of packets that synchronously produce a replication request
  /// (0 for read-centric / async apps, 1 for the sync counter).
  double sync_update_fraction = 0.0;
  /// Fraction of packets that must buffer through the network because a
  /// write is in flight (reads overlapping writes; adds request traffic but
  /// not store-side application work beyond an echo).
  double read_buffer_fraction = 0.0;
  /// Protocol bytes added per replication request beyond the original
  /// packet (headers; the piggybacked original is counted separately).
  double protocol_overhead_bytes = 70;
  /// Asynchronous snapshot traffic in bits/second (bounded-inconsistency
  /// mode); rides the same links but does not gate per-packet forwarding.
  double snapshot_bps = 0.0;
};

struct AnalyticResult {
  /// Sustainable application throughput, packets/second.
  double throughput_pps = 0.0;
  /// Which bottleneck bound it: "offered", "link", "switch", or "store".
  const char* bottleneck = "offered";
  /// Fraction of fabric bandwidth consumed by protocol messages.
  double protocol_bw_fraction = 0.0;
};

/// Evaluates the model.
AnalyticResult PredictThroughput(const AnalyticConfig& config);

/// Bandwidth consumed by periodic snapshot replication (Fig. 11): one
/// message per slot per structure per period.
/// Returns bits/second on the store-facing links.
double SnapshotBandwidthBps(int num_structures, int slots_per_structure,
                            double snapshot_hz, double bytes_per_message);

}  // namespace redplane::core
