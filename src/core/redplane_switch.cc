#include "core/redplane_switch.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"
#include "common/logging.h"

namespace redplane::core {

namespace {

/// Mirror-buffer sequence for one snapshot slot: unique per (round, index)
/// and ordered so that acknowledging a slot clears superseded rounds too.
std::uint64_t SnapSeq(std::uint64_t round, std::uint32_t index) {
  return (round << 20) | index;
}

std::uint64_t RetxKey(const net::PartitionKey& key, std::uint64_t seq) {
  return HashCombine(net::HashPartitionKey(key), seq);
}

}  // namespace

RedPlaneSwitch::RedPlaneSwitch(
    dp::SwitchNode& node, SwitchApp& app,
    std::function<net::Ipv4Addr(const net::PartitionKey&)> shard_for,
    RedPlaneConfig config)
    : node_(node),
      app_(app),
      shard_for_(std::move(shard_for)),
      config_(config) {
  assert(shard_for_);
  node_.mirror().set_truncate_to(config_.mirror_truncate_bytes);
}

RedPlaneSwitch::~RedPlaneSwitch() = default;

void RedPlaneSwitch::Process(dp::SwitchContext& ctx, net::Packet pkt) {
  if (IsProtocolPacket(pkt)) {
    if (pkt.ip.has_value() && pkt.ip->dst == node_.ip()) {
      stats_.Add("resp_bytes", static_cast<double>(pkt.WireSize()));
      auto msg = DecodeFromPacket(pkt);
      if (!msg.has_value()) {
        stats_.Add("malformed_acks");
        return;
      }
      HandleAck(ctx, std::move(*msg));
      return;
    }
    // Transit protocol traffic (another switch <-> store): plain L3.
    ctx.Forward(std::move(pkt));
    return;
  }
  HandleAppPacket(ctx, std::move(pkt));
}

void RedPlaneSwitch::HandleAppPacket(dp::SwitchContext& ctx, net::Packet pkt) {
  const auto key = app_.KeyOf(pkt);
  if (!key.has_value()) {
    ctx.Forward(std::move(pkt));
    return;
  }
  stats_.Add("orig_bytes", static_cast<double>(pkt.WireSize()));
  stats_.Add("app_pkts");
  const SimTime now = ctx.Now();

  FlowEntry* entry = flows_.Find(*key);
  if (entry != nullptr && entry->LeaseActive(now)) {
    // Proactive renewal for read-centric flows (§5.3): writes renew
    // implicitly, so only renew explicitly when the lease is aging and no
    // write is about to do it for us.
    if (!entry->renew_in_flight && !entry->WritesInFlight() &&
        entry->lease_expiry - now < config_.renew_interval) {
      Msg renew;
      renew.type = MsgType::kLeaseRenewOnly;
      renew.key = *key;
      renew.seq = entry->cur_seq;
      renew.reply_to = node_.ip();
      entry->renew_in_flight = true;
      stats_.Add("renewals_sent");
      SendRequest(renew, /*mirror=*/false);
      // Record the send time for expiry extension on kRenewAck.
      renew_sent_at_[RetxKey(*key, 0)] = now;
    }
    RunApp(ctx, *key, *entry, std::move(pkt));
    return;
  }

  if (entry != nullptr && entry->status == FlowStatus::kInitPending) {
    // Lease grant still pending: buffer this packet through the network
    // (§5.1): it loops store-and-back until the grant lands.  Each packet
    // carries its own loop count (in the otherwise-unused snapshot_index
    // field) so a busy flow cannot exhaust a shared budget.
    ++entry->init_loops;  // statistics only
    Msg buf;
    buf.type = MsgType::kReadBufferReq;
    buf.key = *key;
    buf.seq = 0;  // marks an unprocessed input looping pre-grant
    buf.snapshot_index = 0;
    buf.reply_to = node_.ip();
    buf.piggyback = std::move(pkt);
    stats_.Add("init_loop_buffered");
    SendRequest(buf, /*mirror=*/false);
    return;
  }

  // No lease (new flow here, or an expired one): acquire it.  The packet
  // rides along as the piggyback and comes back with the grant.
  FlowEntry& fresh = flows_.GetOrCreate(*key);
  fresh = FlowEntry{};  // expired entries are re-initialized from scratch
  fresh.status = FlowStatus::kInitPending;
  init_sent_at_[RetxKey(*key, 0)] = now;
  Msg init;
  init.type = MsgType::kLeaseNewReq;
  init.key = *key;
  init.seq = 0;
  init.reply_to = node_.ip();
  init.piggyback = std::move(pkt);
  stats_.Add("inits_sent");
  SendRequest(init, /*mirror=*/true);
}

void RedPlaneSwitch::RunApp(dp::SwitchContext& ctx,
                            const net::PartitionKey& key, FlowEntry& entry,
                            net::Packet pkt) {
  AppContext actx;
  actx.now = ctx.Now();
  actx.switch_ip = node_.ip();
  ProcessResult result = app_.Process(actx, std::move(pkt), entry.state);

  if (result.state_modified && config_.linearizable) {
    // Synchronous replication: the write leaves as a replication request
    // carrying the new state; the output rides piggybacked and is released
    // by the ack (never before the update is durable).
    ++entry.cur_seq;
    Msg repl;
    repl.type = MsgType::kLeaseRenewReq;
    repl.key = key;
    repl.seq = entry.cur_seq;
    repl.reply_to = node_.ip();
    repl.state = entry.state;
    if (!result.outputs.empty()) {
      if (result.outputs.size() > 1) {
        // Protocol carries one piggyback; multi-output writes are not used
        // by the bundled applications.
        RP_LOG(kWarn) << app_.name() << ": write produced "
                      << result.outputs.size()
                      << " outputs; piggybacking the first only";
      }
      repl.piggyback = std::move(result.outputs.front());
    }
    FlowTable::NoteSend(entry, entry.cur_seq, ctx.Now());
    stats_.Add("writes_replicated");
    SendRequest(repl, /*mirror=*/true);
    return;
  }

  if (config_.linearizable && entry.WritesInFlight()) {
    // A read while writes are in flight: its output may depend on state not
    // yet durable, so it buffers through the network until the newest write
    // is acknowledged (§5.1).
    for (auto& out : result.outputs) {
      Msg buf;
      buf.type = MsgType::kReadBufferReq;
      buf.key = key;
      buf.seq = entry.cur_seq;
      buf.reply_to = node_.ip();
      buf.piggyback = std::move(out);
      stats_.Add("reads_buffered");
      SendRequest(buf, /*mirror=*/false);
    }
    return;
  }

  // Read with nothing in flight (or any packet in bounded-inconsistency
  // mode): release immediately.
  for (auto& out : result.outputs) {
    ReleaseOutput(ctx, std::move(out));
  }
}

void RedPlaneSwitch::HandleAck(dp::SwitchContext& ctx, Msg msg) {
  FlowEntry* entry = flows_.Find(msg.key);
  switch (msg.ack) {
    case AckKind::kLeaseGrantNew:
    case AckKind::kLeaseGrantMigrate: {
      if (entry == nullptr || entry->status != FlowStatus::kInitPending) {
        stats_.Add("stale_grants");
        return;
      }
      node_.mirror().Acknowledge(msg.key, msg.seq);
      stats_.Add(msg.ack == AckKind::kLeaseGrantMigrate ? "grants_migrate"
                                                        : "grants_new");
      const auto sent_it = init_sent_at_.find(RetxKey(msg.key, 0));
      const SimTime sent_at =
          sent_it == init_sent_at_.end() ? ctx.Now() : sent_it->second;
      if (sent_it != init_sent_at_.end()) init_sent_at_.erase(sent_it);
      retx_counts_.erase(RetxKey(msg.key, 0));

      auto install = [this, key = msg.key, state = msg.state, seq = msg.seq,
                      sent_at, piggy = std::move(msg.piggyback)]() mutable {
        FlowEntry* e = flows_.Find(key);
        if (e == nullptr || e->status != FlowStatus::kInitPending) return;
        e->state = std::move(state);
        e->has_state = true;
        e->cur_seq = seq;
        e->last_acked_seq = seq;
        e->lease_expiry = sent_at + config_.lease_period;
        e->status = FlowStatus::kActive;
        e->init_loops = 0;
        if (piggy.has_value()) {
          // The first packet of the flow, returned with the grant: process
          // it now on a fresh pipeline pass.
          node_.Recirculate([this, p = std::move(*piggy)](
                                dp::SwitchContext& rctx) mutable {
            stats_.Add("orig_bytes", -static_cast<double>(p.WireSize()));
            HandleAppPacket(rctx, std::move(p));
          });
        }
      };
      if (app_.StateInMatchTable()) {
        // Match-table state installs only via the switch control plane.
        stats_.Add("cp_installs");
        node_.control_plane().Submit(msg.state.size() + 64, std::move(install));
      } else {
        install();
      }
      return;
    }
    case AckKind::kWriteAck: {
      if (entry != nullptr) {
        FlowTable::NoteAck(*entry, msg.seq, config_.lease_period);
      }
      node_.mirror().Acknowledge(msg.key, msg.seq);
      retx_counts_.erase(RetxKey(msg.key, msg.seq));
      if (msg.piggyback.has_value()) {
        ReleaseOutput(ctx, std::move(*msg.piggyback));
      }
      return;
    }
    case AckKind::kReadReturn: {
      if (!msg.piggyback.has_value()) return;
      if (msg.seq == 0) {
        // An unprocessed input that looped while the grant was pending.
        if (entry != nullptr && entry->status == FlowStatus::kInitPending) {
          // Still no lease (e.g. a control-plane install in progress):
          // loop again, bounded per packet.
          if (msg.snapshot_index >= config_.max_init_loops) {
            stats_.Add("init_loop_drops");
            return;  // permitted input loss
          }
          Msg buf;
          buf.type = MsgType::kReadBufferReq;
          buf.key = msg.key;
          buf.seq = 0;
          buf.snapshot_index = msg.snapshot_index + 1;
          buf.reply_to = node_.ip();
          buf.piggyback = std::move(msg.piggyback);
          stats_.Add("init_loop_buffered");
          SendRequest(buf, /*mirror=*/false);
          return;
        }
        // Lease landed (or flow was forgotten): run the input through the
        // pipeline again.
        node_.Recirculate([this, p = std::move(*msg.piggyback)](
                              dp::SwitchContext& rctx) mutable {
          stats_.Add("orig_bytes", -static_cast<double>(p.WireSize()));
          HandleAppPacket(rctx, std::move(p));
        });
      } else {
        // A processed output whose awaited write is now durable.
        ReleaseOutput(ctx, std::move(*msg.piggyback));
      }
      return;
    }
    case AckKind::kRenewAck: {
      if (entry == nullptr) return;
      entry->renew_in_flight = false;
      const auto it = renew_sent_at_.find(RetxKey(msg.key, 0));
      if (it != renew_sent_at_.end()) {
        entry->lease_expiry =
            std::max(entry->lease_expiry, it->second + config_.lease_period);
        renew_sent_at_.erase(it);
      }
      return;
    }
    case AckKind::kLeaseDenied: {
      // Another switch owns the flow; forget it here (its packets will
      // re-init if routing brings them back).
      stats_.Add("lease_denials");
      flows_.Erase(msg.key);
      node_.mirror().Acknowledge(msg.key, UINT64_MAX);
      return;
    }
    case AckKind::kSnapshotAck: {
      if (epsilon_ != nullptr) {
        epsilon_->SlotAcked(msg.key, msg.seq, ctx.Now());
      }
      node_.mirror().Acknowledge(msg.key, SnapSeq(msg.seq, msg.snapshot_index));
      retx_counts_.erase(
          RetxKey(msg.key, SnapSeq(msg.seq, msg.snapshot_index)));
      return;
    }
    case AckKind::kNone:
      stats_.Add("malformed_acks");
      return;
  }
}

void RedPlaneSwitch::SendRequest(const Msg& msg, bool mirror) {
  net::Packet pkt =
      MakeProtocolPacket(node_.ip(), shard_for_(msg.key), msg);
  stats_.Add("req_bytes", static_cast<double>(pkt.WireSize()));
  stats_.Add("reqs_sent");
  if (mirror) {
    Msg truncated = msg;
    if (!config_.mirror_include_piggyback) truncated.piggyback.reset();
    const std::uint64_t mirror_seq =
        msg.type == MsgType::kSnapshotRepl
            ? SnapSeq(msg.seq, msg.snapshot_index)
            : msg.seq;
    node_.mirror().Mirror(msg.key, mirror_seq, EncodeMsg(truncated),
                          node_.sim().Now());
    if (!retx_scan_running_) {
      retx_scan_running_ = true;
      const std::uint64_t epoch = epoch_;
      node_.sim().Schedule(config_.retx_scan_interval, [this, epoch]() {
        if (epoch == epoch_) ScanRetransmits();
      });
    }
  }
  node_.ForwardPacket(std::move(pkt), kInvalidPort);
}

void RedPlaneSwitch::ScanRetransmits() {
  if (node_.mirror().NumEntries() == 0) {
    retx_scan_running_ = false;
    return;
  }
  const SimTime now = node_.sim().Now();
  std::vector<std::pair<net::PartitionKey, std::uint64_t>> give_up;
  node_.mirror().ForEach([&](dp::MirroredEntry& e) {
    if (now - e.last_sent_at < config_.request_timeout) return;
    // Give-up horizon: a write is abandoned after max_retransmissions
    // timeouts; a lease acquisition (seq 0) legitimately waits out another
    // switch's lease at the store, so it lives for two lease periods.
    const SimDuration horizon =
        e.seq == 0 ? 2 * config_.lease_period
                   : static_cast<SimDuration>(config_.max_retransmissions) *
                         config_.request_timeout;
    if (now - e.enqueued_at > horizon) {
      give_up.emplace_back(e.key, e.seq);
      return;
    }
    ++retx_counts_[RetxKey(e.key, e.seq)];
    auto msg = DecodeMsg(e.data);
    if (!msg.has_value()) {
      give_up.emplace_back(e.key, e.seq);
      return;
    }
    e.last_sent_at = now;
    stats_.Add("retransmits");
    net::Packet pkt =
        MakeProtocolPacket(node_.ip(), shard_for_(msg->key), *msg);
    stats_.Add("req_bytes", static_cast<double>(pkt.WireSize()));
    node_.ForwardPacket(std::move(pkt), kInvalidPort);
  });
  for (const auto& [key, seq] : give_up) {
    stats_.Add("retx_give_ups");
    node_.mirror().Acknowledge(key, seq);
    retx_counts_.erase(RetxKey(key, seq));
    if (seq == 0) {
      // An abandoned lease acquisition must not leave a zombie
      // kInitPending entry behind (it would drop the flow's packets
      // forever); forget the flow so its next packet restarts the
      // acquisition — the store absorbs the duplicate Init.
      FlowEntry* entry = flows_.Find(key);
      if (entry != nullptr && entry->status == FlowStatus::kInitPending) {
        flows_.Erase(key);
        init_sent_at_.erase(RetxKey(key, 0));
      }
    }
  }
  const std::uint64_t epoch = epoch_;
  node_.sim().Schedule(config_.retx_scan_interval, [this, epoch]() {
    if (epoch == epoch_) ScanRetransmits();
  });
}

void RedPlaneSwitch::StartSnapshotReplication(Snapshottable& snap) {
  snapshottable_ = &snap;
  if (epsilon_ == nullptr) {
    epsilon_ = std::make_unique<EpsilonTracker>(
        config_.epsilon_bound, [this](const net::PartitionKey&) {
          stats_.Add("epsilon_violations");
        });
  }
  // One batch per T_snap; packet i addresses slot i (§5.4).  Generated
  // packets are spaced a pipeline-pass apart.
  node_.packet_generator().Start(
      config_.snapshot_period, snapshottable_->NumSnapshotSlots(),
      node_.config().pipeline_latency,
      [this](std::uint32_t index) { SnapshotBurstSlot(index); });
  // Periodic ε audit.
  const std::uint64_t epoch = epoch_;
  node_.sim().Schedule(config_.epsilon_bound,
                       [this, epoch]() { EpsilonAuditTick(epoch); });
}

void RedPlaneSwitch::EpsilonAuditTick(std::uint64_t epoch) {
  if (epoch != epoch_ || epsilon_ == nullptr) return;
  epsilon_->Check(node_.sim().Now());
  node_.sim().Schedule(config_.epsilon_bound,
                       [this, epoch]() { EpsilonAuditTick(epoch); });
}

void RedPlaneSwitch::SnapshotBurstSlot(std::uint32_t index) {
  if (snapshottable_ == nullptr) return;
  const SimTime now = node_.sim().Now();
  const auto keys = snapshottable_->SnapshotKeys();
  if (index == 0) {
    ++snapshot_round_;
    for (const auto& key : keys) {
      snapshottable_->BeginSnapshot(key);
      if (epsilon_ != nullptr) {
        epsilon_->BeginRound(key, snapshot_round_,
                             snapshottable_->NumSnapshotSlots(), now);
      }
    }
  }
  for (const auto& key : keys) {
    Msg msg;
    msg.type = MsgType::kSnapshotRepl;
    msg.key = key;
    msg.seq = snapshot_round_;
    msg.snapshot_index = index;
    msg.reply_to = node_.ip();
    msg.state = snapshottable_->ReadSnapshotSlot(key, index);
    stats_.Add("snapshot_slots_sent");
    SendRequest(msg, /*mirror=*/true);
  }
}

void RedPlaneSwitch::ReleaseOutput(dp::SwitchContext& ctx, net::Packet pkt) {
  (void)ctx;
  stats_.Add("outputs_released");
  // Bandwidth accounting counts what the switch sends and receives (the
  // paper's Fig. 10 methodology), so the released output counts as original
  // traffic alongside its arrival.
  stats_.Add("orig_bytes", static_cast<double>(pkt.WireSize()));
  node_.ForwardPacket(std::move(pkt), kInvalidPort);
}

void RedPlaneSwitch::Reset() {
  ++epoch_;
  flows_.Reset();
  retx_counts_.clear();
  init_sent_at_.clear();
  renew_sent_at_.clear();
  retx_scan_running_ = false;
  app_.Reset();
}

void RedPlaneSwitch::OnRecovery() {
  ++epoch_;
  retx_scan_running_ = false;
  if (snapshottable_ != nullptr) {
    StartSnapshotReplication(*snapshottable_);
  }
}

}  // namespace redplane::core
