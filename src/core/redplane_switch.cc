#include "core/redplane_switch.h"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "obs/profiler.h"

namespace redplane::core {

namespace {

// Profiler sites for the switch's hot paths (namespace scope: no
// function-local-static guard on the per-packet path).
obs::ProfSite g_prof_process("switch.process");
obs::ProfSite g_prof_handle_ack("switch.handle_ack");
obs::ProfSite g_prof_send_request("switch.send_request");

/// Mirror-buffer sequence for one snapshot slot: unique per (round, index)
/// and ordered so that acknowledging a slot clears superseded rounds too.
std::uint64_t SnapSeq(std::uint64_t round, std::uint32_t index) {
  return (round << 20) | index;
}

}  // namespace

RedPlaneSwitch::RedPlaneSwitch(
    dp::SwitchNode& node, SwitchApp& app,
    std::function<net::Ipv4Addr(const net::PartitionKey&)> shard_for,
    RedPlaneConfig config)
    : node_(node),
      app_(app),
      shard_for_(std::move(shard_for)),
      config_(config),
      stats_(node.name() + "/rp"),
      trace_(node.name() + "/rp"),
      atap_(node.name() + "/rp"),
      diag_(node.name() + "/rp lease table",
            [this](std::ostream& os) { DumpLeaseTable(os); }) {
  assert(shard_for_);
  node_.mirror().set_truncate_to(config_.mirror_truncate_bytes);
  m_.app_pkts = stats_.RegisterCounter("app_pkts");
  m_.orig_bytes = stats_.RegisterCounter("orig_bytes");
  m_.req_bytes = stats_.RegisterCounter("req_bytes");
  m_.resp_bytes = stats_.RegisterCounter("resp_bytes");
  m_.reqs_sent = stats_.RegisterCounter("reqs_sent");
  m_.inits_sent = stats_.RegisterCounter("inits_sent");
  m_.renewals_sent = stats_.RegisterCounter("renewals_sent");
  m_.writes_replicated = stats_.RegisterCounter("writes_replicated");
  m_.reads_buffered = stats_.RegisterCounter("reads_buffered");
  m_.init_loop_buffered = stats_.RegisterCounter("init_loop_buffered");
  m_.init_loop_drops = stats_.RegisterCounter("init_loop_drops");
  m_.grants_new = stats_.RegisterCounter("grants_new");
  m_.grants_migrate = stats_.RegisterCounter("grants_migrate");
  m_.stale_grants = stats_.RegisterCounter("stale_grants");
  m_.cp_installs = stats_.RegisterCounter("cp_installs");
  m_.lease_denials = stats_.RegisterCounter("lease_denials");
  m_.retransmits = stats_.RegisterCounter("retransmits");
  m_.retx_give_ups = stats_.RegisterCounter("retx_give_ups");
  m_.renew_timeouts = stats_.RegisterCounter("renew_timeouts");
  m_.batch_envelopes = stats_.RegisterCounter("batch_envelopes");
  m_.batch_msgs = stats_.RegisterHistogram("batch_msgs");
  m_.batch_bytes = stats_.RegisterHistogram("batch_bytes");
  m_.coalesce_wait_us = stats_.RegisterHistogram("coalesce_wait_us");
  m_.outputs_released = stats_.RegisterCounter("outputs_released");
  m_.malformed_acks = stats_.RegisterCounter("malformed_acks");
  m_.snapshot_slots_sent = stats_.RegisterCounter("snapshot_slots_sent");
  m_.epsilon_violations = stats_.RegisterCounter("epsilon_violations");
  m_.write_rtt_us = stats_.RegisterHistogram("write_rtt_us");
  m_.local_reads_served = stats_.RegisterCounter("local_reads_served");
  m_.merge_deltas_sent = stats_.RegisterCounter("merge_deltas_sent");
  m_.merge_acks = stats_.RegisterCounter("merge_acks");
  m_.replica_pushes_rx = stats_.RegisterCounter("replica_pushes_rx");
  m_.local_read_staleness_us =
      stats_.RegisterHistogram("local_read_staleness_us");
  // Resolve the deployment's consistency policy: the app's declaration,
  // with the deployment override winning (DESIGN.md §14).
  StateTraits traits = app_.Traits();
  if (config_.mode_override.has_value()) traits.mode = *config_.mode_override;
  if (config_.staleness_bound > 0) traits.staleness_bound = config_.staleness_bound;
  if (config_.merge_interval > 0) traits.merge_interval = config_.merge_interval;
  policy_ = ConsistencyPolicy::Make(traits);
  mode_ = policy_->mode();
  stats_.AddCallbackGauge(
      "active_flows", [this] { return static_cast<double>(flows_.Size()); });
  stats_.AddCallbackGauge("mirror_occupancy_bytes", [this] {
    return static_cast<double>(node_.mirror().OccupancyBytes());
  });
  // PR 7 SoA-table health: digest-index load factor and worst probe chain,
  // sampled on demand by the fleet time-series exporter (obs/timeseries.h).
  stats_.AddCallbackGauge("flow_idx_load", [this] {
    const auto s = flows_.IndexStatsNow();
    return s.capacity == 0 ? 0.0
                           : static_cast<double>(s.used) /
                                 static_cast<double>(s.capacity);
  });
  stats_.AddCallbackGauge("flow_idx_max_probe", [this] {
    return static_cast<double>(flows_.IndexStatsNow().max_probe);
  });
  stats_.AddCallbackGauge("mirror_idx_load", [this] {
    const auto s = node_.mirror().IndexStatsNow();
    return s.capacity == 0 ? 0.0
                           : static_cast<double>(s.used) /
                                 static_cast<double>(s.capacity);
  });
  stats_.AddCallbackGauge("mirror_idx_max_probe", [this] {
    return static_cast<double>(node_.mirror().IndexStatsNow().max_probe);
  });
}

RedPlaneSwitch::~RedPlaneSwitch() = default;

void RedPlaneSwitch::Process(dp::SwitchContext& ctx, net::Packet pkt) {
  obs::ProfScope prof(g_prof_process);
  if (IsProtocolPacket(pkt)) {
    if (pkt.ip.has_value() && pkt.ip->dst == node_.ip()) {
      m_.resp_bytes.Add(static_cast<double>(pkt.WireSize()));
      auto msg = MsgView::Parse(pkt.payload);
      if (!msg.has_value()) {
        m_.malformed_acks.Add();
        return;
      }
      HandleAck(ctx, std::move(*msg));
      return;
    }
    // Transit protocol traffic (another switch <-> store): plain L3.
    ctx.Forward(std::move(pkt));
    return;
  }
  HandleAppPacket(ctx, std::move(pkt));
}

void RedPlaneSwitch::HandleAppPacket(dp::SwitchContext& ctx, net::Packet pkt) {
  const auto key = app_.KeyOf(pkt);
  if (!key.has_value()) {
    ctx.Forward(std::move(pkt));
    return;
  }
  m_.orig_bytes.Add(static_cast<double>(pkt.WireSize()));
  m_.app_pkts.Add();
  const SimTime now = ctx.Now();

  if (mode_ == ConsistencyMode::kMergeable) {
    // Multi-writer mode: no lease machinery at all — the flow is admitted
    // locally and the single-owner protocol below never runs for it.
    HandleMergeablePacket(ctx, *key, std::move(pkt));
    return;
  }

  std::uint32_t slot = flows_.FindSlot(*key);
  if (slot != FlowTable::kNilSlot && flows_.LeaseActive(slot, now)) {
    // A renewal whose request or ack was lost is un-wedged by the flow's
    // renew timer (OnRenewTimeout), not here on the packet path.
    FlowTable::Cold& cold = flows_.cold(slot);
    // Proactive renewal for read-centric flows (§5.3): writes renew
    // implicitly, so only renew explicitly when the lease is aging and no
    // write is about to do it for us.
    if (!cold.renew_in_flight && !flows_.WritesInFlight(slot) &&
        flows_.lease_expiry(slot) - now < config_.renew_interval) {
      Msg renew;
      renew.type = MsgType::kLeaseRenewOnly;
      renew.key = *key;
      renew.seq = flows_.cur_seq(slot);
      renew.reply_to = node_.ip();
      renew.mode = mode_;
      renew.span_id = NewSpanId();
      cold.renew_in_flight = true;
      m_.renewals_sent.Add();
      if (trace_.armed()) {
        trace_.Emit(obs::Ev::kRenewSent, net::HashPartitionKey(*key),
                    flows_.cur_seq(slot), 0.0, renew.span_id);
      }
      SendRequest(renew, /*mirror=*/false);
      // Record the send time for expiry extension on kRenewAck, and arm
      // the un-wedge timer in case the renewal (or its ack) is lost.
      cold.renew_sent_at = now;
      ArmRenewTimer(slot);
    }
    RunApp(ctx, *key, slot, std::move(pkt));
    return;
  }

  if (slot != FlowTable::kNilSlot &&
      flows_.status(slot) == FlowStatus::kInitPending) {
    // Lease grant still pending: buffer this packet through the network
    // (§5.1): it loops store-and-back until the grant lands.  Each packet
    // carries its own loop count (in the otherwise-unused snapshot_index
    // field) so a busy flow cannot exhaust a shared budget.
    FlowTable::Cold& cold = flows_.cold(slot);
    ++cold.init_loops;  // statistics only
    Msg buf;
    buf.type = MsgType::kReadBufferReq;
    buf.key = *key;
    buf.seq = 0;  // marks an unprocessed input looping pre-grant
    buf.snapshot_index = 0;
    buf.reply_to = node_.ip();
    buf.mode = mode_;
    buf.piggyback = std::move(pkt);
    buf.span_id = NewSpanId();
    m_.init_loop_buffered.Add();
    if (trace_.armed()) {
      trace_.Emit(obs::Ev::kBufferedReadLoop, net::HashPartitionKey(*key), 0,
                  static_cast<double>(cold.init_loops), buf.span_id);
    }
    SendRequest(buf, /*mirror=*/false);
    return;
  }

  // No lease (new flow here, or an expired one): acquire it.  The packet
  // rides along as the piggyback and comes back with the grant.
  if (slot == FlowTable::kNilSlot) {
    slot = flows_.GetOrCreateSlot(*key);
  } else {
    // Expired entries are re-initialized from scratch; any renew timer
    // still pending for the stale lease dies with it.
    CancelRenewTimer(slot);
    flows_.Reinit(slot);
  }
  flows_.cold(slot).init_sent_at = now;
  Msg init;
  init.type = MsgType::kLeaseNewReq;
  init.key = *key;
  init.seq = 0;
  init.reply_to = node_.ip();
  init.mode = mode_;
  init.piggyback = std::move(pkt);
  init.span_id = NewSpanId();
  m_.inits_sent.Add();
  if (trace_.armed()) {
    trace_.Emit(obs::Ev::kLeaseMiss, net::HashPartitionKey(*key), 0, 0.0,
                init.span_id);
  }
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kLeaseRequested, net::HashPartitionKey(*key));
  }
  SendRequest(init, /*mirror=*/true);
}

void RedPlaneSwitch::RunApp(dp::SwitchContext& ctx,
                            const net::PartitionKey& key, std::uint32_t slot,
                            net::Packet pkt) {
  AppContext actx;
  actx.now = ctx.Now();
  actx.switch_ip = node_.ip();
  ProcessResult result =
      app_.Process(actx, std::move(pkt), flows_.cold(slot).state);

  if (result.state_modified && config_.linearizable) {
    // Synchronous replication: the write leaves as a replication request
    // carrying the new state; the output rides piggybacked and is released
    // by the ack (never before the update is durable).
    const std::uint64_t seq = flows_.NextSeq(slot);
    Msg repl;
    repl.type = MsgType::kLeaseRenewReq;
    repl.key = key;
    repl.seq = seq;
    repl.reply_to = node_.ip();
    repl.mode = mode_;
    repl.state = flows_.cold(slot).state;
    if (!result.outputs.empty()) {
      if (result.outputs.size() > 1) {
        // Protocol carries one piggyback; multi-output writes are not used
        // by the bundled applications.
        RP_LOG(kWarn) << app_.name() << ": write produced "
                      << result.outputs.size()
                      << " outputs; piggybacking the first only";
      }
      repl.piggyback = std::move(result.outputs.front());
    }
    repl.span_id = NewSpanId();
    // Pending-send records older than the retransmit give-up horizon are
    // dead (their request was acked or abandoned); NoteSend compacts them.
    flows_.NoteSend(slot, seq, ctx.Now(),
                    static_cast<SimDuration>(config_.max_retransmissions) *
                        config_.request_timeout);
    m_.writes_replicated.Add();
    if (trace_.armed()) {
      flows_.cold(slot).last_write_span = repl.span_id;
      trace_.Emit(obs::Ev::kReplicationSent, net::HashPartitionKey(key), seq,
                  static_cast<double>(repl.state.size()), repl.span_id);
    }
    SendRequest(repl, /*mirror=*/true);
    return;
  }

  if (config_.linearizable && flows_.WritesInFlight(slot)) {
    // Replicated-read mode (DESIGN.md §14): answer the read from local
    // state instead of looping it through the store, as long as the local
    // replica's staleness — how long the oldest un-acked write has been in
    // flight — is within the app's declared bound.  Beyond the bound the
    // read falls through to the buffering path below (ε-serializability is
    // preserved by waiting, never by serving stale).
    if (mode_ == ConsistencyMode::kReplicatedRead) {
      const SimTime oldest = flows_.OldestPendingSendTime(slot);
      const SimDuration staleness = oldest != 0 ? ctx.Now() - oldest : 0;
      if (config_.mutation_stale_reads || policy_->AllowLocalRead(staleness)) {
        for (auto& out : result.outputs) {
          m_.local_reads_served.Add();
          m_.local_read_staleness_us.Record(ToMicroseconds(staleness));
          if (atap_.armed()) {
            atap_.Emit(audit::Tap::kLocalReadServed, net::HashPartitionKey(key),
                       flows_.cur_seq(slot),
                       static_cast<std::uint64_t>(policy_->staleness_bound()),
                       static_cast<double>(staleness));
          }
          ReleaseOutput(ctx, key, std::move(out));
        }
        return;
      }
    }
    // A read while writes are in flight: its output may depend on state not
    // yet durable, so it buffers through the network until the newest write
    // is acknowledged (§5.1).
    for (auto& out : result.outputs) {
      Msg buf;
      buf.type = MsgType::kReadBufferReq;
      buf.key = key;
      buf.seq = flows_.cur_seq(slot);
      buf.reply_to = node_.ip();
      buf.mode = mode_;
      buf.piggyback = std::move(out);
      buf.span_id = NewSpanId();
      m_.reads_buffered.Add();
      if (trace_.armed()) {
        // Parent the read's span under the write it waits on, so the span
        // tree shows the dependency.
        trace_.Emit(obs::Ev::kBufferedRead, net::HashPartitionKey(key),
                    flows_.cur_seq(slot), 0.0, buf.span_id,
                    flows_.cold(slot).last_write_span);
      }
      SendRequest(buf, /*mirror=*/false);
    }
    return;
  }

  // Read with nothing in flight (or any packet in bounded-inconsistency
  // mode): release immediately.
  for (auto& out : result.outputs) {
    ReleaseOutput(ctx, key, std::move(out));
  }
}

void RedPlaneSwitch::HandleMergeablePacket(dp::SwitchContext& ctx,
                                           const net::PartitionKey& key,
                                           net::Packet pkt) {
  std::uint32_t slot = flows_.FindSlot(key);
  if (slot == FlowTable::kNilSlot) {
    // Local admission: no lease, no store round trip.  The admission tap
    // exempts the key from the single-owner invariant — several switches
    // admitting the same mergeable key concurrently is the whole point.
    slot = flows_.GetOrCreateSlot(key);
    flows_.set_status(slot, FlowStatus::kActive);
    if (atap_.armed()) {
      atap_.Emit(audit::Tap::kFlowAdmitted, net::HashPartitionKey(key), 0,
                 static_cast<std::uint64_t>(mode_));
    }
  }
  AppContext actx;
  actx.now = ctx.Now();
  actx.switch_ip = node_.ip();
  ProcessResult result =
      app_.Process(actx, std::move(pkt), flows_.cold(slot).state);

  if (result.state_modified) {
    FlowTable::Cold& cold = flows_.cold(slot);
    if (!cold.merge_dirty) {
      cold.merge_dirty = true;
      merge_dirty_.emplace_back(slot, flows_.gen(slot));
    }
    EnsureMergeTick();
  } else if (atap_.armed() && !result.outputs.empty()) {
    // A locally served read with no staleness contract (aux 0): legal at
    // any staleness in this mode, and tapped so the mode-aware monitors
    // can prove they know that.
    atap_.Emit(audit::Tap::kLocalReadServed, net::HashPartitionKey(key),
               flows_.cur_seq(slot), 0, 0.0);
  }
  // Zero-RTT writes: every output releases immediately; durability comes
  // from the periodic idempotent merge push, not from an ack.
  for (auto& out : result.outputs) {
    ReleaseOutput(ctx, key, std::move(out));
  }
}

void RedPlaneSwitch::EnsureMergeTick() {
  if (merge_tick_armed_) return;
  merge_tick_armed_ = true;
  const std::uint64_t epoch = epoch_;
  node_.sim().Schedule(policy_->merge_interval(),
                       [this, epoch]() { MergeTick(epoch); });
}

void RedPlaneSwitch::MergeTick(std::uint64_t epoch) {
  if (epoch != epoch_) return;
  merge_tick_armed_ = false;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dirty;
  dirty.swap(merge_dirty_);
  const SimTime now = node_.sim().Now();
  for (const auto& [slot, gen] : dirty) {
    if (!flows_.Alive(slot, gen)) continue;
    FlowTable::Cold& cold = flows_.cold(slot);
    if (!cold.merge_dirty) continue;
    cold.merge_dirty = false;
    // The delta is the full local state: joining a superset is idempotent,
    // so a retransmitted or replayed delta can never double-count.
    const std::uint64_t seq = flows_.NextSeq(slot);
    Msg delta;
    delta.type = MsgType::kMergeDelta;
    delta.key = cold.key;
    delta.seq = seq;
    delta.reply_to = node_.ip();
    delta.mode = mode_;
    delta.state = cold.state;
    delta.span_id = NewSpanId();
    flows_.NoteSend(slot, seq, now,
                    static_cast<SimDuration>(config_.max_retransmissions) *
                        config_.request_timeout);
    m_.merge_deltas_sent.Add();
    if (atap_.armed()) {
      atap_.Emit(audit::Tap::kMergeEmitted, net::HashPartitionKey(cold.key),
                 seq, 0, policy_->Measure(cold.state));
    }
    if (trace_.armed()) {
      trace_.Emit(obs::Ev::kReplicationSent, net::HashPartitionKey(cold.key),
                  seq, static_cast<double>(delta.state.size()), delta.span_id);
    }
    SendRequest(delta, /*mirror=*/true);
  }
}

void RedPlaneSwitch::HandleAck(dp::SwitchContext& ctx, MsgView msg) {
  obs::ProfScope prof(g_prof_handle_ack);
  const net::PartitionKey key = msg.key();
  const std::uint64_t seq = msg.seq();
  const std::uint64_t span = msg.span_id();
  const std::uint32_t slot = flows_.FindSlot(key);
  // Releasing a mirrored entry cancels its retransmit timer in the same
  // pass (O(1) in the timing wheel).
  const auto cancel_retx = [this](dp::MirrorTable::Handle,
                                  std::uint64_t timer) {
    if (timer != 0) node_.sim().Cancel(timer);
  };
  switch (msg.ack()) {
    case AckKind::kLeaseGrantNew:
    case AckKind::kLeaseGrantMigrate: {
      if (slot == FlowTable::kNilSlot ||
          flows_.status(slot) != FlowStatus::kInitPending) {
        m_.stale_grants.Add();
        return;
      }
      // The grant's piggyback (the flow's first packet) is consumed below,
      // so parse it up front; a grant with a malformed piggyback is dropped
      // whole, as a malformed ack.
      std::optional<net::Packet> piggy;
      if (msg.has_piggyback()) {
        piggy = msg.PiggybackPacket();
        if (!piggy.has_value()) {
          m_.malformed_acks.Add();
          return;
        }
      }
      node_.mirror().Acknowledge(key, seq, cancel_retx);
      const bool migrate = msg.ack() == AckKind::kLeaseGrantMigrate;
      if (migrate) {
        m_.grants_migrate.Add();
      } else {
        m_.grants_new.Add();
      }
      if (trace_.armed()) {
        trace_.Emit(migrate ? obs::Ev::kFailoverRehome : obs::Ev::kLeaseGrant,
                    net::HashPartitionKey(key), seq, 0.0, span);
      }
      if (atap_.armed()) {
        atap_.Emit(audit::Tap::kLeaseGranted, net::HashPartitionKey(key), seq,
                   migrate ? 1 : 0);
      }
      const SimTime init_sent = flows_.cold(slot).init_sent_at;
      const SimTime sent_at = init_sent != 0 ? init_sent : ctx.Now();
      flows_.cold(slot).init_sent_at = 0;

      const std::size_t state_size = msg.state().size();
      auto install = [this, key, state = msg.state().ToVector(), seq, sent_at,
                      piggy = std::move(piggy)]() mutable {
        // Re-resolve by key: a control-plane install may be delayed past an
        // erase that recycled the slot.
        const std::uint32_t s = flows_.FindSlot(key);
        if (s == FlowTable::kNilSlot ||
            flows_.status(s) != FlowStatus::kInitPending) {
          return;
        }
        flows_.cold(s).state = std::move(state);
        flows_.cold(s).has_state = true;
        flows_.set_cur_seq(s, seq);
        flows_.set_last_acked_seq(s, seq);
        flows_.set_lease_expiry(s, sent_at + config_.lease_period +
                                       config_.mutation_lease_extension);
        flows_.set_status(s, FlowStatus::kActive);
        flows_.cold(s).init_loops = 0;
        if (atap_.armed()) {
          atap_.Emit(audit::Tap::kLeaseAcquired, net::HashPartitionKey(key),
                     seq,
                     static_cast<std::uint64_t>(flows_.lease_expiry(s)));
        }
        if (mode_ == ConsistencyMode::kReplicatedRead) {
          // Announce the weaker mode to the mode-aware monitors and
          // subscribe this switch to the store's replica pushes.  (Single-
          // owner flows announce nothing: their path stays bit-identical.)
          if (atap_.armed()) {
            atap_.Emit(audit::Tap::kFlowAdmitted, net::HashPartitionKey(key),
                       0, static_cast<std::uint64_t>(mode_));
          }
          FlowTable::Cold& cold = flows_.cold(s);
          if (!cold.replica_subscribed) {
            cold.replica_subscribed = true;
            Msg sub;
            sub.type = MsgType::kReplicaSubscribe;
            sub.key = key;
            sub.reply_to = node_.ip();
            sub.mode = mode_;
            sub.span_id = NewSpanId();
            SendRequest(sub, /*mirror=*/false);
          }
        }
        if (piggy.has_value()) {
          // The first packet of the flow, returned with the grant: process
          // it now on a fresh pipeline pass.
          node_.Recirculate([this, p = std::move(*piggy)](
                                dp::SwitchContext& rctx) mutable {
            m_.orig_bytes.Add(-static_cast<double>(p.WireSize()));
            HandleAppPacket(rctx, std::move(p));
          });
        }
      };
      if (app_.StateInMatchTable()) {
        // Match-table state installs only via the switch control plane.
        m_.cp_installs.Add();
        node_.control_plane().Submit(state_size + 64, std::move(install));
      } else {
        install();
      }
      return;
    }
    case AckKind::kWriteAck: {
      if (slot != FlowTable::kNilSlot) {
        // Write replication RTT, measured send-to-ack from the pending-send
        // record the ack is about to consume.
        const SimTime sent_at = flows_.SendTimeOf(slot, seq);
        if (sent_at != 0) {
          m_.write_rtt_us.Record(
              static_cast<double>(ctx.Now() - sent_at) / 1e3);
        }
        flows_.NoteAck(slot, seq,
                       config_.lease_period + config_.mutation_lease_extension);
        if (atap_.armed()) {
          atap_.Emit(audit::Tap::kLeaseAcquired, net::HashPartitionKey(key),
                     seq,
                     static_cast<std::uint64_t>(flows_.lease_expiry(slot)));
        }
      }
      node_.mirror().Acknowledge(key, seq, cancel_retx);
      if (trace_.armed()) {
        trace_.Emit(obs::Ev::kAckReleased, net::HashPartitionKey(key), seq,
                    0.0, span);
      }
      if (atap_.armed()) {
        atap_.Emit(audit::Tap::kAckReleased, net::HashPartitionKey(key), seq);
      }
      if (msg.has_piggyback()) {
        if (auto piggy = msg.PiggybackPacket()) {
          ReleaseOutput(ctx, key, std::move(*piggy));
        } else {
          m_.malformed_acks.Add();
        }
      }
      return;
    }
    case AckKind::kReadReturn: {
      if (!msg.has_piggyback()) return;
      if (seq == 0) {
        // An unprocessed input that looped while the grant was pending.
        if (slot != FlowTable::kNilSlot &&
            flows_.status(slot) == FlowStatus::kInitPending) {
          // Still no lease (e.g. a control-plane install in progress):
          // loop again, bounded per packet.
          if (msg.snapshot_index() >= config_.max_init_loops) {
            m_.init_loop_drops.Add();
            if (trace_.armed()) {
              trace_.Emit(obs::Ev::kOutputDropped, net::HashPartitionKey(key),
                          0, static_cast<double>(msg.snapshot_index()), span);
            }
            return;  // permitted input loss
          }
          // Re-loop without ever parsing the buffered input: its serialized
          // bytes are spliced verbatim into the next request.
          Msg buf;
          buf.type = MsgType::kReadBufferReq;
          buf.key = key;
          buf.seq = 0;
          buf.snapshot_index = msg.snapshot_index() + 1;
          buf.reply_to = node_.ip();
          buf.piggyback_raw = msg.piggyback_bytes();
          // The re-loop keeps the request's span: every lap through the
          // network buffer accumulates in one lifecycle.
          buf.span_id = span;
          m_.init_loop_buffered.Add();
          if (trace_.armed()) {
            trace_.Emit(obs::Ev::kBufferedReadLoop, net::HashPartitionKey(key),
                        0, static_cast<double>(msg.snapshot_index() + 1), span);
          }
          SendRequest(buf, /*mirror=*/false);
          return;
        }
        // Lease landed (or flow was forgotten): run the input through the
        // pipeline again.
        auto piggy = msg.PiggybackPacket();
        if (!piggy.has_value()) {
          m_.malformed_acks.Add();
          return;
        }
        node_.Recirculate([this, p = std::move(*piggy)](
                              dp::SwitchContext& rctx) mutable {
          m_.orig_bytes.Add(-static_cast<double>(p.WireSize()));
          HandleAppPacket(rctx, std::move(p));
        });
      } else {
        // A processed output whose awaited write is now durable.
        auto piggy = msg.PiggybackPacket();
        if (!piggy.has_value()) {
          m_.malformed_acks.Add();
          return;
        }
        if (trace_.armed()) {
          trace_.Emit(obs::Ev::kAckReleased, net::HashPartitionKey(key), seq,
                      0.0, span);
        }
        if (atap_.armed()) {
          atap_.Emit(audit::Tap::kAckReleased, net::HashPartitionKey(key),
                     seq);
        }
        ReleaseOutput(ctx, key, std::move(*piggy));
      }
      return;
    }
    case AckKind::kRenewAck: {
      if (slot == FlowTable::kNilSlot) return;
      FlowTable::Cold& cold = flows_.cold(slot);
      CancelRenewTimer(slot);
      cold.renew_in_flight = false;
      if (trace_.armed()) {
        trace_.Emit(obs::Ev::kRenewAck, net::HashPartitionKey(key), seq, 0.0,
                    span);
      }
      if (cold.renew_sent_at != 0) {
        flows_.set_lease_expiry(
            slot, std::max(flows_.lease_expiry(slot),
                           cold.renew_sent_at + config_.lease_period +
                               config_.mutation_lease_extension));
        cold.renew_sent_at = 0;
        if (atap_.armed()) {
          atap_.Emit(audit::Tap::kLeaseAcquired, net::HashPartitionKey(key),
                     seq,
                     static_cast<std::uint64_t>(flows_.lease_expiry(slot)));
        }
      }
      return;
    }
    case AckKind::kLeaseDenied: {
      // Another switch owns the flow; forget it here (its packets will
      // re-init if routing brings them back).
      m_.lease_denials.Add();
      if (trace_.armed()) {
        trace_.Emit(obs::Ev::kLeaseDenied, net::HashPartitionKey(key), 0, 0.0,
                    span);
      }
      if (slot != FlowTable::kNilSlot) {
        if (atap_.armed()) {
          atap_.Emit(audit::Tap::kLeaseReleased, net::HashPartitionKey(key));
        }
        CancelRenewTimer(slot);
      }
      flows_.Erase(key);
      // Cumulative release: drops every mirrored request of the flow,
      // cancelling each one's retransmit timer (and with it the per-entry
      // retransmit count that used to leak from a side map here).
      node_.mirror().Acknowledge(key, UINT64_MAX, cancel_retx);
      return;
    }
    case AckKind::kSnapshotAck: {
      if (epsilon_ != nullptr) {
        epsilon_->SlotAcked(key, seq, ctx.Now());
      }
      node_.mirror().Acknowledge(key, SnapSeq(seq, msg.snapshot_index()),
                                 cancel_retx);
      return;
    }
    case AckKind::kMergeAck: {
      // A merge delta was joined at the store.  The ack carries the merged
      // global state: fold remote writers' contributions into the local
      // copy (the merge is idempotent, so re-folding our own is harmless).
      node_.mirror().Acknowledge(key, seq, cancel_retx);
      if (slot != FlowTable::kNilSlot) {
        flows_.NoteAck(slot, seq, config_.lease_period);
        const net::BufferView merged = msg.state();
        if (merged.size() > 0) {
          policy_->Merge(flows_.cold(slot).state, merged.span());
        }
        m_.merge_acks.Add();
      }
      return;
    }
    case AckKind::kReplicaPush: {
      // Unsolicited store push (replicated-read): refresh the local replica
      // — but never clobber local writes that are still in flight, and
      // never regress to a push older than what this switch already acked.
      if (slot == FlowTable::kNilSlot ||
          flows_.status(slot) != FlowStatus::kActive ||
          flows_.WritesInFlight(slot) || seq < flows_.cur_seq(slot)) {
        return;
      }
      flows_.cold(slot).state = msg.state().ToVector();
      flows_.cold(slot).has_state = true;
      flows_.set_cur_seq(slot, seq);
      flows_.set_last_acked_seq(slot, seq);
      m_.replica_pushes_rx.Add();
      return;
    }
    case AckKind::kNone:
      m_.malformed_acks.Add();
      return;
  }
}

void RedPlaneSwitch::SendRequest(const Msg& msg, bool mirror) {
  obs::ProfScope prof(g_prof_send_request);
  // Encode once; the wire packet and the mirror copy share the buffer.
  net::Buffer payload = EncodeMsg(msg);
  const net::Ipv4Addr shard = shard_for_(msg.key);
  m_.reqs_sent.Add();
  if (mirror) {
    net::BufferView mdata{payload};
    const bool has_piggy =
        msg.piggyback.has_value() || !msg.piggyback_raw.empty();
    if (!config_.mirror_include_piggyback && has_piggy) {
      // Slice off the piggybacked output and zero its length field; the
      // patch copies only the retained prefix (CoW), never the output.
      const std::size_t sans_piggy = HeaderWireSize(msg.key) + msg.state.size();
      mdata = mdata.Prefix(sans_piggy);
      mdata.PatchU16(HeaderWireSize(msg.key) - 2, 0);
    }
    const std::uint64_t mirror_seq =
        msg.type == MsgType::kSnapshotRepl
            ? SnapSeq(msg.seq, msg.snapshot_index)
            : msg.seq;
    const dp::MirrorTable::Handle h = node_.mirror().Mirror(
        msg.key, mirror_seq, std::move(mdata), node_.sim().Now());
    ArmMirrorTimer(h);
  }
  // Replication traffic (writes and renewals) coalesces per shard when
  // enabled; everything else — and everything when coalesce_delay is 0 —
  // leaves immediately as its own packet.
  if (config_.coalesce_delay > 0 && (msg.type == MsgType::kLeaseRenewReq ||
                                     msg.type == MsgType::kLeaseRenewOnly)) {
    EnqueueForBatch(shard, net::BufferView{std::move(payload)});
    return;
  }
  net::Packet pkt = MakeProtocolPacketRaw(node_.ip(), shard, payload);
  m_.req_bytes.Add(static_cast<double>(pkt.WireSize()));
  node_.ForwardPacket(std::move(pkt), kInvalidPort);
}

void RedPlaneSwitch::EnqueueForBatch(net::Ipv4Addr shard,
                                     net::BufferView msg) {
  PendingBatch& b = coalesce_[shard.value];
  if (b.msgs.empty()) {
    b.opened_at = node_.sim().Now();
    const std::uint64_t epoch = epoch_;
    const std::uint64_t gen = b.gen;
    node_.sim().Schedule(config_.coalesce_delay, [this, shard, epoch, gen]() {
      if (epoch != epoch_) return;
      const auto it = coalesce_.find(shard.value);
      if (it == coalesce_.end() || it->second.gen != gen) return;
      FlushBatch(shard);
    });
  }
  b.bytes += msg.size();
  b.msgs.push_back(std::move(msg));
  if (b.msgs.size() >= config_.coalesce_max_msgs ||
      b.bytes >= config_.coalesce_max_bytes) {
    FlushBatch(shard);
  }
}

void RedPlaneSwitch::FlushBatch(net::Ipv4Addr shard) {
  const auto it = coalesce_.find(shard.value);
  if (it == coalesce_.end()) return;
  PendingBatch& b = it->second;
  ++b.gen;  // invalidates any delayed flush still scheduled
  if (b.msgs.empty()) return;
  m_.coalesce_wait_us.Record(
      static_cast<double>(node_.sim().Now() - b.opened_at) / 1e3);
  net::Packet pkt;
  if (b.msgs.size() == 1) {
    // A lone message goes out unwrapped: same bytes as per-packet mode.
    pkt = MakeProtocolPacketRaw(node_.ip(), shard, std::move(b.msgs.front()));
  } else {
    net::BufferView env = net::EncodeBatchEnvelope(b.msgs);
    m_.batch_envelopes.Add();
    m_.batch_msgs.Record(static_cast<double>(b.msgs.size()));
    m_.batch_bytes.Record(static_cast<double>(env.size()));
    if (trace_.armed()) {
      trace_.Emit(obs::Ev::kBatchFlushed, shard.value,
                  static_cast<std::uint64_t>(b.msgs.size()),
                  static_cast<double>(env.size()));
    }
    pkt = MakeProtocolPacketRaw(node_.ip(), shard, std::move(env));
  }
  b.msgs.clear();
  b.bytes = 0;
  m_.req_bytes.Add(static_cast<double>(pkt.WireSize()));
  node_.ForwardPacket(std::move(pkt), kInvalidPort);
}

void RedPlaneSwitch::ArmMirrorTimer(dp::MirrorTable::Handle h) {
  const std::uint64_t epoch = epoch_;
  const std::uint64_t id =
      node_.sim().Schedule(config_.request_timeout, [this, h, epoch]() {
        if (epoch == epoch_) OnMirrorTimeout(h);
      });
  node_.mirror().set_timer(h, id);
}

void RedPlaneSwitch::OnMirrorTimeout(dp::MirrorTable::Handle h) {
  dp::MirrorTable& mirror = node_.mirror();
  if (!mirror.Alive(h)) return;
  // This timer has fired: clear the stored id *before* anything that could
  // release the entry, so release paths never cancel a dead event.
  mirror.set_timer(h, 0);
  const SimTime now = node_.sim().Now();
  // Give-up horizon: a write is abandoned after max_retransmissions
  // timeouts; a lease acquisition (seq 0) legitimately waits out another
  // switch's lease at the store, so it lives for two lease periods.
  const SimDuration horizon =
      mirror.seq(h) == 0
          ? 2 * config_.lease_period
          : static_cast<SimDuration>(config_.max_retransmissions) *
                config_.request_timeout;
  if (now - mirror.enqueued_at(h) > horizon) {
    GiveUpMirror(h);
    return;
  }
  // Resend the mirrored bytes verbatim — no decode/re-encode.  A copy
  // truncated below its own header cannot be resent (it would be dropped
  // by the store anyway), so it is abandoned like a dead request.
  const auto msg = MsgView::Parse(mirror.data(h));
  if (!msg.has_value()) {
    GiveUpMirror(h);
    return;
  }
  mirror.set_last_sent_at(h, now);
  mirror.BumpRetx(h);
  m_.retransmits.Add();
  if (trace_.armed()) {
    // The mirrored bytes carry the original request's span id verbatim.
    trace_.Emit(obs::Ev::kRetransmit, net::HashPartitionKey(mirror.key(h)),
                mirror.seq(h), static_cast<double>(mirror.retx_count(h)),
                msg->span_id());
  }
  const net::Ipv4Addr shard = shard_for_(msg->key());
  if (config_.coalesce_delay > 0 && (msg->type() == MsgType::kLeaseRenewReq ||
                                     msg->type() == MsgType::kLeaseRenewOnly)) {
    EnqueueForBatch(shard, mirror.data(h));
  } else {
    net::Packet pkt = MakeProtocolPacketRaw(node_.ip(), shard, mirror.data(h));
    m_.req_bytes.Add(static_cast<double>(pkt.WireSize()));
    node_.ForwardPacket(std::move(pkt), kInvalidPort);
  }
  ArmMirrorTimer(h);
}

void RedPlaneSwitch::GiveUpMirror(dp::MirrorTable::Handle h) {
  const net::PartitionKey key = node_.mirror().key(h);
  const std::uint64_t seq = node_.mirror().seq(h);
  m_.retx_give_ups.Add();
  if (trace_.armed()) {
    trace_.Emit(obs::Ev::kRetxGiveUp, net::HashPartitionKey(key), seq);
  }
  // Releases h itself (its timer lane is already 0 — the fired timer
  // cleared it) and any earlier mirrors of the flow, whose pending timers
  // are cancelled by the visitor.
  node_.mirror().Acknowledge(key, seq, [this](dp::MirrorTable::Handle,
                                              std::uint64_t timer) {
    if (timer != 0) node_.sim().Cancel(timer);
  });
  if (seq == 0) {
    // An abandoned lease acquisition must not leave a zombie kInitPending
    // entry behind (it would drop the flow's packets forever); forget the
    // flow so its next packet restarts the acquisition — the store absorbs
    // the duplicate Init.
    const std::uint32_t slot = flows_.FindSlot(key);
    if (slot != FlowTable::kNilSlot &&
        flows_.status(slot) == FlowStatus::kInitPending) {
      if (atap_.armed()) {
        atap_.Emit(audit::Tap::kLeaseReleased, net::HashPartitionKey(key));
      }
      CancelRenewTimer(slot);
      flows_.Erase(key);
    }
  }
}

void RedPlaneSwitch::ArmRenewTimer(std::uint32_t slot) {
  const std::uint32_t gen = flows_.gen(slot);
  const std::uint64_t epoch = epoch_;
  flows_.cold(slot).renew_timer =
      node_.sim().Schedule(config_.request_timeout, [this, slot, gen, epoch]() {
        if (epoch == epoch_) OnRenewTimeout(slot, gen);
      });
}

void RedPlaneSwitch::OnRenewTimeout(std::uint32_t slot, std::uint32_t gen) {
  if (!flows_.Alive(slot, gen)) return;
  FlowTable::Cold& cold = flows_.cold(slot);
  cold.renew_timer = 0;  // fired; release paths must not cancel it
  if (!cold.renew_in_flight) return;
  // The renewal (or its ack) was lost: un-wedge so the next packet can
  // renew again, and forget the send time so a very late ack does not
  // extend the lease from it.
  cold.renew_in_flight = false;
  cold.renew_sent_at = 0;
  m_.renew_timeouts.Add();
}

void RedPlaneSwitch::CancelRenewTimer(std::uint32_t slot) {
  FlowTable::Cold& cold = flows_.cold(slot);
  if (cold.renew_timer != 0) {
    node_.sim().Cancel(cold.renew_timer);
    cold.renew_timer = 0;
  }
}

void RedPlaneSwitch::StartSnapshotReplication(Snapshottable& snap) {
  snapshottable_ = &snap;
  if (epsilon_ == nullptr) {
    epsilon_ = std::make_unique<EpsilonTracker>(
        config_.epsilon_bound, [this](const net::PartitionKey&) {
          m_.epsilon_violations.Add();
        });
  }
  // ε visibility: bound as a gauge, observed staleness as a histogram, and
  // one audit sample per key per ε-audit tick.  Re-registering on the
  // OnRecovery re-entry fetches the same cells, so this is idempotent.
  m_.epsilon_bound_us = stats_.RegisterGauge("epsilon_bound_us");
  m_.epsilon_bound_us.Set(ToMicroseconds(config_.epsilon_bound));
  m_.epsilon_staleness_us = stats_.RegisterHistogram("epsilon_staleness_us");
  epsilon_->SetObserver([this](const net::PartitionKey& key,
                               SimDuration staleness, SimTime /*now*/) {
    m_.epsilon_staleness_us.Record(ToMicroseconds(staleness));
    if (atap_.armed()) {
      atap_.Emit(audit::Tap::kEpsilonSample, net::HashPartitionKey(key), 0,
                 static_cast<std::uint64_t>(config_.epsilon_bound),
                 static_cast<double>(staleness));
    }
  });
  // One batch per T_snap; packet i addresses slot i (§5.4).  Generated
  // packets are spaced a pipeline-pass apart.
  node_.packet_generator().Start(
      config_.snapshot_period, snapshottable_->NumSnapshotSlots(),
      node_.config().pipeline_latency,
      [this](std::uint32_t index) { SnapshotBurstSlot(index); });
  // Periodic ε audit.
  const std::uint64_t epoch = epoch_;
  node_.sim().Schedule(config_.epsilon_bound,
                       [this, epoch]() { EpsilonAuditTick(epoch); });
}

void RedPlaneSwitch::EpsilonAuditTick(std::uint64_t epoch) {
  if (epoch != epoch_ || epsilon_ == nullptr) return;
  epsilon_->Check(node_.sim().Now());
  node_.sim().Schedule(config_.epsilon_bound,
                       [this, epoch]() { EpsilonAuditTick(epoch); });
}

void RedPlaneSwitch::SnapshotBurstSlot(std::uint32_t index) {
  if (snapshottable_ == nullptr) return;
  const SimTime now = node_.sim().Now();
  const auto keys = snapshottable_->SnapshotKeys();
  if (index == 0) {
    ++snapshot_round_;
    for (const auto& key : keys) {
      snapshottable_->BeginSnapshot(key);
      if (epsilon_ != nullptr) {
        epsilon_->BeginRound(key, snapshot_round_,
                             snapshottable_->NumSnapshotSlots(), now);
      }
    }
  }
  for (const auto& key : keys) {
    Msg msg;
    msg.type = MsgType::kSnapshotRepl;
    msg.key = key;
    msg.seq = snapshot_round_;
    msg.snapshot_index = index;
    msg.reply_to = node_.ip();
    msg.state = snapshottable_->ReadSnapshotSlot(key, index);
    msg.span_id = NewSpanId();
    m_.snapshot_slots_sent.Add();
    if (trace_.armed()) {
      trace_.Emit(obs::Ev::kSnapshotSent, net::HashPartitionKey(key),
                  SnapSeq(snapshot_round_, index),
                  static_cast<double>(msg.state.size()), msg.span_id);
    }
    SendRequest(msg, /*mirror=*/true);
  }
}

void RedPlaneSwitch::ReleaseOutput(dp::SwitchContext& ctx,
                                   const net::PartitionKey& key,
                                   net::Packet pkt) {
  (void)ctx;
  m_.outputs_released.Add();
  // Bandwidth accounting counts what the switch sends and receives (the
  // paper's Fig. 10 methodology), so the released output counts as original
  // traffic alongside its arrival.
  m_.orig_bytes.Add(static_cast<double>(pkt.WireSize()));
  if (atap_.armed()) {
    atap_.Emit(audit::Tap::kOutputServed, net::HashPartitionKey(key));
  }
  node_.ForwardPacket(std::move(pkt), kInvalidPort);
}

void RedPlaneSwitch::DumpLeaseTable(std::ostream& os) const {
  const SimTime now = node_.sim().Now();
  std::vector<std::pair<std::string, FlowRef>> rows;
  flows_.ForEach([&](const net::PartitionKey& key, FlowRef ref) {
    rows.emplace_back(net::ToString(key), ref);
  });
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  os << rows.size() << " flow(s), t=" << now << "ns\n";
  for (const auto& [name, e] : rows) {
    os << "  " << name
       << (e.status() == FlowStatus::kActive ? " active" : " init-pending")
       << " cur_seq=" << e.cur_seq() << " acked=" << e.last_acked_seq()
       << " lease_expiry=" << e.lease_expiry()
       << (e.LeaseActive(now) ? " (live)" : " (expired)")
       << " in_flight=" << (e.cur_seq() - e.last_acked_seq()) << "\n";
  }
}

void RedPlaneSwitch::Reset() {
  ++epoch_;
  if (atap_.armed()) {
    // key 0 = "this component dropped every lease" (SRAM lost on failure).
    atap_.Emit(audit::Tap::kLeaseReleased, 0);
  }
  // Cancel every per-entry timer before the tables forget the entries; the
  // epoch bump alone would keep the events pending (and their payload slots
  // pinned) until they fire as no-ops.
  flows_.ForEach([this](const net::PartitionKey&, FlowRef ref) {
    CancelRenewTimer(ref.slot());
  });
  flows_.Reset();
  node_.mirror().ForEach([this](dp::MirrorTable::Handle h) {
    const std::uint64_t timer = node_.mirror().timer(h);
    if (timer != 0) {
      node_.sim().Cancel(timer);
      node_.mirror().set_timer(h, 0);
    }
  });
  coalesce_.clear();  // pending batches are lost with the SRAM
  merge_dirty_.clear();
  merge_tick_armed_ = false;  // the epoch bump killed any scheduled tick
  app_.Reset();
}

void RedPlaneSwitch::OnRecovery() {
  ++epoch_;
  coalesce_.clear();
  merge_dirty_.clear();
  merge_tick_armed_ = false;
  if (snapshottable_ != nullptr) {
    StartSnapshotReplication(*snapshottable_);
  }
}

}  // namespace redplane::core
