// The RedPlane-enabled application: the switch-side half of the protocol.
//
// Wraps a SwitchApp (the developer's P4 program analogue) in the RedPlane
// control blocks of paper §5/§6 and Appendix B:
//
//  * lease acquisition & migration — a packet for a flow with no local lease
//    triggers a kLeaseNewReq; the grant installs the flow's state (via the
//    control plane when the app keeps state in match tables) and releases
//    the piggybacked packet,
//  * synchronous replication (linearizable mode) — a state-modifying packet
//    increments the flow's sequence number and leaves as a kLeaseRenewReq
//    carrying the new state and the output packet; the output is released
//    only when the store's ack returns it,
//  * network buffering — reads that arrive while writes are in flight (and
//    packets that arrive while the lease grant is pending) loop through the
//    store as kReadBufferReq, using the network as buffer memory,
//  * sequencing & retransmission — every state-bearing request is mirrored
//    (truncated to the replication header) into the switch's packet buffer
//    and resent if unacknowledged within the timeout (§5.2),
//  * lease renewal — read-centric flows renew every renew_interval,
//  * periodic snapshot replication (bounded-inconsistency mode) — for apps
//    implementing Snapshottable, the packet generator emits per-slot
//    kSnapshotRepl bursts every snapshot_period (§5.4).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "audit/diag.h"
#include "audit/taps.h"
#include "core/app.h"
#include "core/epsilon.h"
#include "core/flow_table.h"
#include "core/protocol.h"
#include "core/snapshot.h"
#include "dataplane/pipeline.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace redplane::core {

struct RedPlaneConfig {
  /// Lease validity period (must match the store's; 1 s in the prototype).
  SimDuration lease_period = Seconds(1);
  /// Explicit renewal cadence for read-centric flows (0.5 s in the paper).
  SimDuration renew_interval = Milliseconds(500);
  /// Retransmit an unacknowledged request after this long.
  SimDuration request_timeout = Microseconds(500);
  /// Unused since retransmission moved to per-entry timers (each mirrored
  /// request carries its own deadline in the simulator's timing wheel);
  /// retained so existing configs keep compiling.
  SimDuration retx_scan_interval = Microseconds(100);
  /// Mirror truncation: bytes of a request kept for retransmission
  /// (replication header + state value; never the piggybacked output
  /// unless mirror_include_piggyback is set).
  std::size_t mirror_truncate_bytes = 128;
  /// Ablation switch: mirror the full request including the piggybacked
  /// output (what RedPlane deliberately avoids; §5.2).
  bool mirror_include_piggyback = false;
  /// Give up on a request after this many retransmissions (the flow entry
  /// is dropped and re-initialized by the next packet).
  std::uint32_t max_retransmissions = 50;
  /// Linearizable mode: replicate every write synchronously.  When false,
  /// writes stay local and the app's Snapshottable structures are
  /// replicated periodically (bounded-inconsistency mode).
  bool linearizable = true;
  /// Snapshot period T_snap for bounded-inconsistency mode.
  SimDuration snapshot_period = Milliseconds(1);
  /// ε bound for the inconsistency tracker.
  SimDuration epsilon_bound = Milliseconds(10);
  /// Max loops through the network buffer while awaiting a lease grant
  /// before a packet is dropped (loss is permitted by the model).
  std::uint32_t max_init_loops = 64;
  /// --- replication coalescing (batch envelope, DESIGN.md §10) ---
  /// Hold outgoing write-replication (kLeaseRenewReq) and renew-only
  /// requests to the same shard for up to this long, then flush them as one
  /// batch envelope.  0 (the default) disables coalescing: every request
  /// leaves immediately as its own packet, bit-for-bit today's behaviour.
  SimDuration coalesce_delay = 0;
  /// Flush a pending batch early once it holds this many sub-messages...
  std::size_t coalesce_max_msgs = 16;
  /// ...or this many encoded payload bytes.
  std::size_t coalesce_max_bytes = 4096;
  /// TEST-ONLY protocol mutation: inflates the switch's believed lease
  /// expiry by this much beyond the conservative send-time derivation,
  /// breaking the invariant that the switch never outlives the store's
  /// lease.  Used to prove the audit SingleOwnerMonitor catches broken
  /// lease handling; must stay 0 in production configs.
  SimDuration mutation_lease_extension = 0;
  /// --- consistency-mode spectrum (DESIGN.md §14) ---
  /// Pins the deployment's consistency mode regardless of the app's
  /// declared StateTraits.  nullopt (the default) uses the app's
  /// declaration; pinning kSingleOwner explicitly is bit-identical to the
  /// default for single-owner apps (A/B-tested in tests/consistency_test).
  std::optional<ConsistencyMode> mode_override;
  /// Replicated-read: staleness-bound override (0 = app traits/default).
  SimDuration staleness_bound = 0;
  /// Mergeable: merge-delta push period override (0 = app traits/default).
  SimDuration merge_interval = 0;
  /// TEST-ONLY protocol mutation: replicated-read serves local reads
  /// without checking the staleness bound (the served staleness is still
  /// honestly tapped), so stale reads beyond the bound escape.  Proves the
  /// bounded_staleness monitor catches them; must stay false in production.
  bool mutation_stale_reads = false;
};

class RedPlaneSwitch : public dp::PipelineHandler {
 public:
  /// `shard_for` maps a partition key to the responsible state-store (chain
  /// head) address — the preconfigured lookup table of §5.1.2.
  RedPlaneSwitch(dp::SwitchNode& node, SwitchApp& app,
                 std::function<net::Ipv4Addr(const net::PartitionKey&)>
                     shard_for,
                 RedPlaneConfig config = {});
  ~RedPlaneSwitch() override;

  // PipelineHandler:
  void Process(dp::SwitchContext& ctx, net::Packet pkt) override;
  void Reset() override;
  void OnRecovery() override;

  /// Starts periodic snapshot replication (requires the app to implement
  /// Snapshottable).  Normally called once after construction for apps in
  /// bounded-inconsistency mode.
  void StartSnapshotReplication(Snapshottable& snap);

  const FlowTable& flow_table() const { return flows_; }
  obs::MetricRegistry& stats() { return stats_; }
  EpsilonTracker* epsilon_tracker() { return epsilon_.get(); }
  const RedPlaneConfig& config() const { return config_; }
  /// The resolved consistency mode this deployment runs under.
  ConsistencyMode consistency_mode() const { return mode_; }
  const ConsistencyPolicy& policy() const { return *policy_; }

  /// Bandwidth accounting: bytes of protocol requests/responses vs original
  /// packets seen, for the Fig. 10 bench.
  double protocol_request_bytes() const { return m_.req_bytes.value(); }
  double protocol_response_bytes() const { return m_.resp_bytes.value(); }
  double original_bytes() const { return m_.orig_bytes.value(); }

 private:
  /// Handles a protocol ack addressed to this switch.  Operates on the
  /// received bytes directly; the piggybacked packet is parsed only on the
  /// paths that consume it.
  void HandleAck(dp::SwitchContext& ctx, MsgView msg);

  /// Handles a normal application packet.
  void HandleAppPacket(dp::SwitchContext& ctx, net::Packet pkt);

  /// Mergeable multi-writer path (DESIGN.md §14): local admission, zero-RTT
  /// writes, outputs released immediately; modified state is marked dirty
  /// and shipped to the store by the periodic merge tick.
  void HandleMergeablePacket(dp::SwitchContext& ctx,
                             const net::PartitionKey& key, net::Packet pkt);

  /// Arms the periodic merge-delta push if not already pending.
  void EnsureMergeTick();
  /// Ships every dirty mergeable flow's state as a kMergeDelta.
  void MergeTick(std::uint64_t epoch);

  /// Runs the app on `pkt` under an active lease and replicates/releases
  /// per the consistency mode.  `slot` is the flow's table slot.
  void RunApp(dp::SwitchContext& ctx, const net::PartitionKey& key,
              std::uint32_t slot, net::Packet pkt);

  /// Sends `msg` to the store shard for its key, optionally mirroring it
  /// for retransmission.
  void SendRequest(const Msg& msg, bool mirror);

  /// Appends an encoded request to the shard's pending batch, scheduling a
  /// flush after coalesce_delay (or flushing now on a count/byte cap).
  void EnqueueForBatch(net::Ipv4Addr shard, net::BufferView msg);

  /// Sends the shard's pending batch: a lone message goes out unwrapped,
  /// two or more as one batch envelope.
  void FlushBatch(net::Ipv4Addr shard);

  /// Arms (or re-arms) the mirrored entry's retransmit deadline: one timer
  /// per in-flight request, stored in the entry's timer lane.  Firing cost
  /// is O(1) per due entry — there is no whole-table scan.
  void ArmMirrorTimer(dp::MirrorTable::Handle h);
  /// A mirrored request's retransmit deadline fired: resend the mirrored
  /// bytes (or give up past the horizon) and re-arm.
  void OnMirrorTimeout(dp::MirrorTable::Handle h);
  /// Abandons a mirrored request past its give-up horizon (and, for an
  /// Init, forgets the zombie kInitPending flow).
  void GiveUpMirror(dp::MirrorTable::Handle h);

  /// Arms the flow's renew-timeout timer when an explicit renewal leaves;
  /// fires to un-wedge renew_in_flight if the renewal or its ack was lost.
  void ArmRenewTimer(std::uint32_t slot);
  void OnRenewTimeout(std::uint32_t slot, std::uint32_t gen);
  /// Cancels the flow's pending renew timer, if any.
  void CancelRenewTimer(std::uint32_t slot);

  /// Periodic ε-bound audit in bounded-inconsistency mode.
  void EpsilonAuditTick(std::uint64_t epoch);

  /// Emits one snapshot replication burst.
  void SnapshotBurstSlot(std::uint32_t index);

  /// Releases an output packet toward its destination.  `key` identifies
  /// the flow the output belongs to, for the kOutputServed recovery tap
  /// (per-flow downtime is measured between served outputs).
  void ReleaseOutput(dp::SwitchContext& ctx, const net::PartitionKey& key,
                     net::Packet pkt);

  /// Renders the live lease/flow table (failure diagnostics).
  void DumpLeaseTable(std::ostream& os) const;

  /// Fresh observability span id for a request this switch originates.
  /// Derived from the switch IP and a per-switch counter, so ids are unique
  /// across switches yet fully deterministic (byte-identical traces for
  /// identical seeds).
  std::uint64_t NewSpanId() {
    return (static_cast<std::uint64_t>(node_.ip().value) << 32) | ++next_span_;
  }

  dp::SwitchNode& node_;
  SwitchApp& app_;
  std::function<net::Ipv4Addr(const net::PartitionKey&)> shard_for_;
  RedPlaneConfig config_;
  FlowTable flows_;
  obs::MetricRegistry stats_;
  obs::TraceHandle trace_;
  audit::TapHandle atap_;
  audit::DiagToken diag_;

  /// Typed handles into stats_ for every hot-path counter (registered once
  /// at construction; updated O(1) per packet).
  struct Metrics {
    obs::Counter app_pkts;
    obs::Counter orig_bytes;
    obs::Counter req_bytes;
    obs::Counter resp_bytes;
    obs::Counter reqs_sent;
    obs::Counter inits_sent;
    obs::Counter renewals_sent;
    obs::Counter writes_replicated;
    obs::Counter reads_buffered;
    obs::Counter init_loop_buffered;
    obs::Counter init_loop_drops;
    obs::Counter grants_new;
    obs::Counter grants_migrate;
    obs::Counter stale_grants;
    obs::Counter cp_installs;
    obs::Counter lease_denials;
    obs::Counter retransmits;
    obs::Counter retx_give_ups;
    obs::Counter renew_timeouts;
    obs::Counter batch_envelopes;
    obs::Histogram batch_msgs;
    obs::Histogram batch_bytes;
    obs::Histogram coalesce_wait_us;
    obs::Counter outputs_released;
    obs::Counter malformed_acks;
    obs::Counter snapshot_slots_sent;
    obs::Counter epsilon_violations;
    obs::Histogram write_rtt_us;
    obs::Gauge epsilon_bound_us;
    obs::Histogram epsilon_staleness_us;
    // Consistency-mode spectrum (DESIGN.md §14).
    obs::Counter local_reads_served;
    obs::Counter merge_deltas_sent;
    obs::Counter merge_acks;
    obs::Counter replica_pushes_rx;
    obs::Histogram local_read_staleness_us;
  };
  Metrics m_;

  /// Resolved consistency policy (app traits, possibly pinned by
  /// config_.mode_override); mode_ caches policy_->mode() for the
  /// per-packet branch.
  std::unique_ptr<ConsistencyPolicy> policy_;
  ConsistencyMode mode_ = ConsistencyMode::kSingleOwner;
  /// Mergeable mode: (slot, gen) of flows with un-pushed local writes, and
  /// whether the periodic push is scheduled.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> merge_dirty_;
  bool merge_tick_armed_ = false;

  // Bounded-inconsistency mode.
  Snapshottable* snapshottable_ = nullptr;
  std::unique_ptr<EpsilonTracker> epsilon_;
  std::uint64_t snapshot_round_ = 0;

  // Retransmission, init/renew send-time, and write-span bookkeeping all
  // live in the flow/mirror tables' per-entry lanes now — released with
  // their entry, so there are no side maps to leak.
  std::uint64_t epoch_ = 0;
  std::uint64_t next_span_ = 0;

  /// Per-shard replication coalescer (active only when coalesce_delay > 0).
  /// `gen` invalidates the delayed flush when a cap-triggered flush (or a
  /// Reset) beats the timer.
  struct PendingBatch {
    std::vector<net::BufferView> msgs;
    std::size_t bytes = 0;
    SimTime opened_at = 0;
    std::uint64_t gen = 0;
  };
  std::unordered_map<std::uint32_t, PendingBatch> coalesce_;  // by shard IP
};

}  // namespace redplane::core
