#include "core/flow_table.h"

#include <algorithm>
#include <cassert>

namespace redplane::core {

namespace {
constexpr std::size_t kMinIndexCap = 16;
/// Hard bound on per-flow pending-send records even without a horizon:
/// outstanding requests are capped by retransmission anyway.
constexpr std::size_t kMaxPendingSends = 256;
}  // namespace

std::size_t FlowTable::FindCell(std::uint64_t digest,
                                const net::PartitionKey& key) const {
  if (idx_slot_.empty()) return SIZE_MAX;
  const std::size_t mask = idx_slot_.size() - 1;
  std::size_t i = digest & mask;
  while (idx_slot_[i] != kNilSlot) {
    if (idx_digest_[i] == digest && cold_[idx_slot_[i]].key == key) return i;
    i = (i + 1) & mask;
  }
  return SIZE_MAX;
}

void FlowTable::GrowIndex() {
  const std::size_t cap = std::max(kMinIndexCap, idx_slot_.size() * 2);
  std::vector<std::uint64_t> digests(cap, 0);
  std::vector<std::uint32_t> slots(cap, kNilSlot);
  const std::size_t mask = cap - 1;
  for (std::size_t i = 0; i < idx_slot_.size(); ++i) {
    if (idx_slot_[i] == kNilSlot) continue;
    std::size_t j = idx_digest_[i] & mask;
    while (slots[j] != kNilSlot) j = (j + 1) & mask;
    digests[j] = idx_digest_[i];
    slots[j] = idx_slot_[i];
  }
  idx_digest_ = std::move(digests);
  idx_slot_ = std::move(slots);
}

void FlowTable::EraseCell(std::size_t cell) {
  const std::size_t mask = idx_slot_.size() - 1;
  std::size_t hole = cell;
  std::size_t i = (cell + 1) & mask;
  while (idx_slot_[i] != kNilSlot) {
    const std::size_t home = idx_digest_[i] & mask;
    const bool movable = ((i - home) & mask) >= ((i - hole) & mask);
    if (movable) {
      idx_digest_[hole] = idx_digest_[i];
      idx_slot_[hole] = idx_slot_[i];
      hole = i;
    }
    i = (i + 1) & mask;
  }
  idx_slot_[hole] = kNilSlot;
  idx_digest_[hole] = 0;
  --idx_used_;
}

std::uint32_t FlowTable::FindSlot(const net::PartitionKey& key) const {
  const std::size_t cell = FindCell(net::HashPartitionKey(key), key);
  return cell == SIZE_MAX ? kNilSlot : idx_slot_[cell];
}

std::uint32_t FlowTable::GetOrCreateSlot(const net::PartitionKey& key) {
  const std::uint64_t digest = net::HashPartitionKey(key);
  {
    const std::size_t cell = FindCell(digest, key);
    if (cell != SIZE_MAX) return idx_slot_[cell];
  }
  if (idx_slot_.empty() || (idx_used_ + 1) * 10 > idx_slot_.size() * 7) {
    GrowIndex();
  }
  std::uint32_t slot;
  if (free_head_ != kNilSlot) {
    slot = free_head_;
    free_head_ = free_link_[slot];
  } else {
    slot = static_cast<std::uint32_t>(live_.size());
    status_.emplace_back();
    lease_expiry_.emplace_back();
    cur_seq_.emplace_back();
    last_acked_.emplace_back();
    cold_.emplace_back();
    gen_.emplace_back();
    live_.emplace_back();
    free_link_.emplace_back(kNilSlot);
  }
  Reinit(slot);
  cold_[slot].key = key;
  live_[slot] = 1;
  ++count_;

  const std::size_t mask = idx_slot_.size() - 1;
  std::size_t i = digest & mask;
  while (idx_slot_[i] != kNilSlot) i = (i + 1) & mask;
  idx_digest_[i] = digest;
  idx_slot_[i] = slot;
  ++idx_used_;
  return slot;
}

void FlowTable::Reinit(std::uint32_t slot) {
  status_[slot] = FlowStatus::kInitPending;
  lease_expiry_[slot] = 0;
  cur_seq_[slot] = 0;
  last_acked_[slot] = 0;
  Cold& c = cold_[slot];
  c.state.clear();
  c.pending_sends.clear();
  c.init_sent_at = 0;
  c.renew_sent_at = 0;
  c.last_write_span = 0;
  c.renew_timer = 0;
  c.init_loops = 0;
  c.has_state = false;
  c.renew_in_flight = false;
  c.merge_dirty = false;
  c.replica_subscribed = false;
}

void FlowTable::Erase(const net::PartitionKey& key) {
  const std::size_t cell = FindCell(net::HashPartitionKey(key), key);
  if (cell == SIZE_MAX) return;
  const std::uint32_t slot = idx_slot_[cell];
  EraseCell(cell);
  cold_[slot].state.clear();
  cold_[slot].state.shrink_to_fit();
  cold_[slot].pending_sends.clear();
  live_[slot] = 0;
  ++gen_[slot];
  free_link_[slot] = free_head_;
  free_head_ = slot;
  --count_;
}

void FlowTable::Reset() {
  status_.clear();
  lease_expiry_.clear();
  cur_seq_.clear();
  last_acked_.clear();
  cold_.clear();
  gen_.clear();
  live_.clear();
  free_link_.clear();
  free_head_ = kNilSlot;
  count_ = 0;
  idx_digest_.clear();
  idx_slot_.clear();
  idx_used_ = 0;
}

void FlowTable::NoteSend(std::uint32_t slot, std::uint64_t seq, SimTime now,
                         SimDuration horizon) {
  auto& pending = cold_[slot].pending_sends;
  if (horizon > 0) {
    while (!pending.empty() && pending.front().second < now - horizon) {
      pending.pop_front();
    }
  }
  pending.emplace_back(seq, now);
  if (pending.size() > kMaxPendingSends) pending.pop_front();
}

void FlowTable::NoteAck(std::uint32_t slot, std::uint64_t seq,
                        SimDuration lease_period) {
  last_acked_[slot] = std::max(last_acked_[slot], seq);
  // The lease is valid for lease_period after the *send* of the newest
  // request the store has acknowledged; using send time keeps the switch's
  // view conservative relative to the store's.
  auto& pending = cold_[slot].pending_sends;
  SimTime newest_send = 0;
  while (!pending.empty() && pending.front().first <= seq) {
    newest_send = pending.front().second;
    pending.pop_front();
  }
  if (newest_send > 0) {
    lease_expiry_[slot] =
        std::max(lease_expiry_[slot], newest_send + lease_period);
  }
}

SimTime FlowTable::SendTimeOf(std::uint32_t slot, std::uint64_t seq) const {
  for (const auto& [pseq, at] : cold_[slot].pending_sends) {
    if (pseq == seq) return at;
  }
  return 0;
}

FlowTable::IndexStats FlowTable::IndexStatsNow() const {
  IndexStats s;
  s.capacity = idx_slot_.size();
  s.used = idx_used_;
  if (s.capacity == 0) return s;
  const std::size_t mask = s.capacity - 1;
  for (std::size_t i = 0; i < idx_slot_.size(); ++i) {
    if (idx_slot_[i] == kNilSlot) continue;
    const std::size_t home = idx_digest_[i] & mask;
    s.max_probe = std::max(s.max_probe, ((i - home) & mask) + 1);
  }
  return s;
}

}  // namespace redplane::core
