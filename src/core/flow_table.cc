#include "core/flow_table.h"

#include <algorithm>

namespace redplane::core {

FlowEntry& FlowTable::GetOrCreate(const net::PartitionKey& key) {
  return entries_[key];
}

FlowEntry* FlowTable::Find(const net::PartitionKey& key) {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

const FlowEntry* FlowTable::Find(const net::PartitionKey& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second;
}

void FlowTable::Erase(const net::PartitionKey& key) { entries_.erase(key); }

void FlowTable::NoteSend(FlowEntry& entry, std::uint64_t seq, SimTime now) {
  entry.pending_sends.emplace_back(seq, now);
  // Bound memory: outstanding requests are capped by retransmission anyway.
  if (entry.pending_sends.size() > 256) entry.pending_sends.pop_front();
}

void FlowTable::NoteAck(FlowEntry& entry, std::uint64_t seq,
                        SimDuration lease_period) {
  entry.last_acked_seq = std::max(entry.last_acked_seq, seq);
  // The lease is valid for lease_period after the *send* of the newest
  // request the store has acknowledged; using send time keeps the switch's
  // view conservative relative to the store's.
  SimTime newest_send = 0;
  while (!entry.pending_sends.empty() &&
         entry.pending_sends.front().first <= seq) {
    newest_send = entry.pending_sends.front().second;
    entry.pending_sends.pop_front();
  }
  if (newest_send > 0) {
    entry.lease_expiry =
        std::max(entry.lease_expiry, newest_send + lease_period);
  }
}

}  // namespace redplane::core
