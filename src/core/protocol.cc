#include "core/protocol.h"

#include <atomic>

#include "common/logging.h"

namespace redplane::core {

namespace {

constexpr std::uint16_t kMagic = 0x9D1A;

std::atomic<std::uint64_t> g_encode_count{0};

void EncodeKey(net::ByteWriter& w, const net::PartitionKey& key) {
  w.U8(static_cast<std::uint8_t>(key.kind));
  switch (key.kind) {
    case net::PartitionKey::Kind::kFlow:
      w.U32(key.flow.src_ip.value);
      w.U32(key.flow.dst_ip.value);
      w.U16(key.flow.src_port);
      w.U16(key.flow.dst_port);
      w.U8(static_cast<std::uint8_t>(key.flow.proto));
      break;
    case net::PartitionKey::Kind::kVlan:
      w.U16(key.vlan);
      break;
    case net::PartitionKey::Kind::kObject:
      w.U64(key.object);
      break;
  }
}

bool DecodeKey(net::ByteReader& r, net::PartitionKey& key) {
  key.kind = static_cast<net::PartitionKey::Kind>(r.U8());
  switch (key.kind) {
    case net::PartitionKey::Kind::kFlow:
      key.flow.src_ip = net::Ipv4Addr(r.U32());
      key.flow.dst_ip = net::Ipv4Addr(r.U32());
      key.flow.src_port = r.U16();
      key.flow.dst_port = r.U16();
      key.flow.proto = static_cast<net::IpProto>(r.U8());
      return r.ok();
    case net::PartitionKey::Kind::kVlan:
      key.vlan = r.U16();
      return r.ok();
    case net::PartitionKey::Kind::kObject:
      key.object = r.U64();
      return r.ok();
  }
  return false;
}

}  // namespace

std::size_t HeaderWireSize(const net::PartitionKey& key) {
  // magic(2) + type(1) + ack(1) + seq(8) + snapshot_index(4) + reply_to(4) +
  // chain_hop(1) + span_id(8) + mode(1) + key-kind(1) + key body +
  // state-len(2) + piggy-len(2).
  std::size_t key_size = 0;
  switch (key.kind) {
    case net::PartitionKey::Kind::kFlow: key_size = 13; break;
    case net::PartitionKey::Kind::kVlan: key_size = 2; break;
    case net::PartitionKey::Kind::kObject: key_size = 8; break;
  }
  return 2 + 1 + 1 + 8 + 4 + 4 + 1 + 8 + 1 + 1 + key_size + 2 + 2;
}

net::Buffer EncodeMsg(const Msg& msg) {
  g_encode_count.fetch_add(1, std::memory_order_relaxed);
  std::vector<std::byte> out;
  net::ByteWriter w(out);
  w.U16(kMagic);
  w.U8(static_cast<std::uint8_t>(msg.type));
  w.U8(static_cast<std::uint8_t>(msg.ack));
  w.U64(msg.seq);
  w.U32(msg.snapshot_index);
  w.U32(msg.reply_to.value);
  w.U8(msg.chain_hop);
  w.U64(msg.span_id);
  w.U8(static_cast<std::uint8_t>(msg.mode));
  EncodeKey(w, msg.key);
  w.U16(static_cast<std::uint16_t>(msg.state.size()));
  if (msg.piggyback.has_value()) {
    const std::vector<std::byte> piggy = net::Serialize(*msg.piggyback);
    w.U16(static_cast<std::uint16_t>(piggy.size()));
    w.Bytes(msg.state);
    w.Bytes(piggy);
  } else {
    // Splice pre-serialized piggyback bytes verbatim (echo paths).
    w.U16(static_cast<std::uint16_t>(msg.piggyback_raw.size()));
    w.Bytes(msg.state);
    w.Bytes(msg.piggyback_raw);
  }
  return net::Buffer::FromVector(std::move(out));
}

std::optional<MsgView> MsgView::Parse(net::BufferView payload) {
  if (payload.size() < wire::kOffKeyKind + 1) return std::nullopt;
  if (payload.U16At(wire::kOffMagic) != kMagic) return std::nullopt;
  if (payload.U8At(wire::kOffMode) >= kNumConsistencyModes) return std::nullopt;
  // Enum-range validation: an out-of-range type or ack byte used to be
  // silently accepted and then fall through every dispatch switch after
  // paying full service time (fuzz-found silent-accept).  Reject at parse.
  const std::uint8_t type_byte = payload.U8At(wire::kOffType);
  if (type_byte < static_cast<std::uint8_t>(MsgType::kLeaseNewReq) ||
      type_byte > static_cast<std::uint8_t>(MsgType::kReplicaSubscribe)) {
    return std::nullopt;
  }
  if (payload.U8At(wire::kOffAck) >
      static_cast<std::uint8_t>(AckKind::kReplicaPush)) {
    return std::nullopt;
  }
  MsgView v;
  // Decode the key eagerly (it is read on every dispatch) and derive the
  // fixed section offsets from its size.
  net::ByteReader r(payload.span().subspan(wire::kOffKeyKind));
  if (!DecodeKey(r, v.key_)) return std::nullopt;
  const std::size_t key_end =
      wire::kOffKeyKind + (payload.size() - wire::kOffKeyKind - r.Remaining());
  if (payload.size() < key_end + 4) return std::nullopt;
  v.state_len_ = payload.U16At(key_end);
  v.piggy_len_ = payload.U16At(key_end + 2);
  v.state_off_ = static_cast<std::uint32_t>(key_end + 4);
  if (payload.size() <
      v.state_off_ + static_cast<std::size_t>(v.state_len_) + v.piggy_len_) {
    return std::nullopt;
  }
  v.bytes_ = std::move(payload);
  return v;
}

std::optional<net::Packet> MsgView::PiggybackPacket() const {
  if (piggy_len_ == 0) return std::nullopt;
  return net::Parse(piggyback_bytes());
}

Msg MsgView::ToMsg() const {
  Msg msg;
  msg.type = type();
  msg.ack = ack();
  msg.seq = seq();
  msg.snapshot_index = snapshot_index();
  msg.reply_to = reply_to();
  msg.chain_hop = chain_hop();
  msg.span_id = span_id();
  msg.mode = mode();
  msg.key = key_;
  msg.state = state().ToVector();
  msg.piggyback_raw = piggyback_bytes();
  return msg;
}

std::optional<Msg> DecodeMsg(std::span<const std::byte> payload) {
  // Compatibility decoder over a non-owning span: copy once into an owned
  // buffer, then view-parse.  Callers that already hold a BufferView should
  // prefer MsgView::Parse (zero-copy).
  auto view = MsgView::Parse(net::Buffer::CopyOf(payload));
  if (!view.has_value()) return std::nullopt;
  Msg msg = view->ToMsg();
  if (view->has_piggyback()) {
    auto inner = view->PiggybackPacket();
    if (!inner.has_value()) {
      RP_LOG(kWarn) << "RedPlane message with malformed piggyback";
      return std::nullopt;
    }
    msg.piggyback = std::move(inner);
    msg.piggyback_raw.clear();
  }
  return msg;
}

net::Packet MakeProtocolPacket(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                               const Msg& msg) {
  return MakeProtocolPacketRaw(src_ip, dst_ip, EncodeMsg(msg));
}

net::Packet MakeProtocolPacketRaw(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                                  net::BufferView payload) {
  net::Packet p;
  p.id = net::NextPacketId();
  p.eth = net::EthernetHeader{};
  net::Ipv4Header ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.protocol = net::IpProto::kUdp;
  p.ip = ip;
  net::UdpHeader udp;
  udp.src_port = kRedPlaneUdpPort;
  udp.dst_port = kRedPlaneUdpPort;
  p.udp = udp;
  p.payload = std::move(payload);
  return p;
}

bool IsProtocolPacket(const net::Packet& pkt) {
  if (!pkt.udp.has_value() || pkt.udp->dst_port != kRedPlaneUdpPort ||
      pkt.payload.size() < 2) {
    return false;
  }
  // Either a single message or a batch envelope of messages.
  const std::uint16_t magic = pkt.payload.U16At(0);
  return magic == kMagic || magic == net::kBatchMagic;
}

std::optional<Msg> DecodeFromPacket(const net::Packet& pkt) {
  auto view = MsgView::Parse(pkt.payload);
  if (!view.has_value()) return std::nullopt;
  Msg msg = view->ToMsg();
  if (view->has_piggyback()) {
    auto inner = view->PiggybackPacket();
    if (!inner.has_value()) {
      RP_LOG(kWarn) << "RedPlane message with malformed piggyback";
      return std::nullopt;
    }
    msg.piggyback = std::move(inner);
    msg.piggyback_raw.clear();
  }
  return msg;
}

std::uint64_t EncodeCount() {
  return g_encode_count.load(std::memory_order_relaxed);
}

void ResetEncodeCount() {
  g_encode_count.store(0, std::memory_order_relaxed);
}

}  // namespace redplane::core
