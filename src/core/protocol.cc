#include "core/protocol.h"

#include "common/logging.h"

namespace redplane::core {

namespace {

constexpr std::uint16_t kMagic = 0x9D1A;

void EncodeKey(net::ByteWriter& w, const net::PartitionKey& key) {
  w.U8(static_cast<std::uint8_t>(key.kind));
  switch (key.kind) {
    case net::PartitionKey::Kind::kFlow:
      w.U32(key.flow.src_ip.value);
      w.U32(key.flow.dst_ip.value);
      w.U16(key.flow.src_port);
      w.U16(key.flow.dst_port);
      w.U8(static_cast<std::uint8_t>(key.flow.proto));
      break;
    case net::PartitionKey::Kind::kVlan:
      w.U16(key.vlan);
      break;
    case net::PartitionKey::Kind::kObject:
      w.U64(key.object);
      break;
  }
}

bool DecodeKey(net::ByteReader& r, net::PartitionKey& key) {
  key.kind = static_cast<net::PartitionKey::Kind>(r.U8());
  switch (key.kind) {
    case net::PartitionKey::Kind::kFlow:
      key.flow.src_ip = net::Ipv4Addr(r.U32());
      key.flow.dst_ip = net::Ipv4Addr(r.U32());
      key.flow.src_port = r.U16();
      key.flow.dst_port = r.U16();
      key.flow.proto = static_cast<net::IpProto>(r.U8());
      return r.ok();
    case net::PartitionKey::Kind::kVlan:
      key.vlan = r.U16();
      return r.ok();
    case net::PartitionKey::Kind::kObject:
      key.object = r.U64();
      return r.ok();
  }
  return false;
}

}  // namespace

std::size_t HeaderWireSize(const net::PartitionKey& key) {
  // magic(2) + type(1) + ack(1) + seq(8) + snapshot_index(4) + reply_to(4) +
  // chain_hop(1) + key-kind(1) + key body + state-len(2) + piggy-len(2).
  std::size_t key_size = 0;
  switch (key.kind) {
    case net::PartitionKey::Kind::kFlow: key_size = 13; break;
    case net::PartitionKey::Kind::kVlan: key_size = 2; break;
    case net::PartitionKey::Kind::kObject: key_size = 8; break;
  }
  return 2 + 1 + 1 + 8 + 4 + 4 + 1 + 1 + key_size + 2 + 2;
}

std::vector<std::byte> EncodeMsg(const Msg& msg) {
  std::vector<std::byte> out;
  net::ByteWriter w(out);
  w.U16(kMagic);
  w.U8(static_cast<std::uint8_t>(msg.type));
  w.U8(static_cast<std::uint8_t>(msg.ack));
  w.U64(msg.seq);
  w.U32(msg.snapshot_index);
  w.U32(msg.reply_to.value);
  w.U8(msg.chain_hop);
  EncodeKey(w, msg.key);
  w.U16(static_cast<std::uint16_t>(msg.state.size()));
  std::vector<std::byte> piggy;
  if (msg.piggyback.has_value()) piggy = net::Serialize(*msg.piggyback);
  w.U16(static_cast<std::uint16_t>(piggy.size()));
  w.Bytes(msg.state);
  w.Bytes(piggy);
  return out;
}

std::optional<Msg> DecodeMsg(std::span<const std::byte> payload) {
  net::ByteReader r(payload);
  if (r.U16() != kMagic) return std::nullopt;
  Msg msg;
  msg.type = static_cast<MsgType>(r.U8());
  msg.ack = static_cast<AckKind>(r.U8());
  msg.seq = r.U64();
  msg.snapshot_index = r.U32();
  msg.reply_to = net::Ipv4Addr(r.U32());
  msg.chain_hop = r.U8();
  if (!DecodeKey(r, msg.key)) return std::nullopt;
  const std::uint16_t state_len = r.U16();
  const std::uint16_t piggy_len = r.U16();
  msg.state = r.Bytes(state_len);
  if (!r.ok()) return std::nullopt;
  if (piggy_len > 0) {
    const auto piggy_bytes = r.Bytes(piggy_len);
    if (!r.ok()) return std::nullopt;
    auto inner = net::Parse(piggy_bytes);
    if (!inner.has_value()) {
      RP_LOG(kWarn) << "RedPlane message with malformed piggyback";
      return std::nullopt;
    }
    msg.piggyback = std::move(inner);
  }
  return msg;
}

net::Packet MakeProtocolPacket(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                               const Msg& msg) {
  net::Packet p;
  p.id = net::NextPacketId();
  p.eth = net::EthernetHeader{};
  net::Ipv4Header ip;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.protocol = net::IpProto::kUdp;
  p.ip = ip;
  net::UdpHeader udp;
  udp.src_port = kRedPlaneUdpPort;
  udp.dst_port = kRedPlaneUdpPort;
  p.udp = udp;
  p.payload = EncodeMsg(msg);
  return p;
}

bool IsProtocolPacket(const net::Packet& pkt) {
  return pkt.udp.has_value() && pkt.udp->dst_port == kRedPlaneUdpPort &&
         pkt.payload.size() >= 2 &&
         static_cast<std::uint8_t>(pkt.payload[0]) == (kMagic >> 8) &&
         static_cast<std::uint8_t>(pkt.payload[1]) == (kMagic & 0xff);
}

std::optional<Msg> DecodeFromPacket(const net::Packet& pkt) {
  return DecodeMsg(pkt.payload);
}

}  // namespace redplane::core
