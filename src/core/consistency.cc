#include "core/consistency.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/logging.h"
#include "core/app.h"

namespace redplane::core {

const char* ConsistencyModeName(ConsistencyMode mode) {
  switch (mode) {
    case ConsistencyMode::kSingleOwner: return "single_owner";
    case ConsistencyMode::kReplicatedRead: return "replicated_read";
    case ConsistencyMode::kMergeable: return "mergeable";
  }
  return "unknown";
}

namespace {

// The empty-span guards matter: an empty span's data() may be null, and
// memcpy from null is UB even for zero bytes (UBSan nonnull-attribute) —
// reachable from the wire via a kMergeDelta carrying empty state
// (fuzz-found).
std::uint64_t LoadU64(std::span<const std::byte> bytes) {
  std::uint64_t v = 0;
  if (!bytes.empty()) {
    std::memcpy(&v, bytes.data(), std::min(bytes.size(), sizeof(v)));
  }
  return v;
}

std::uint32_t LoadU32(std::span<const std::byte> bytes) {
  std::uint32_t v = 0;
  if (!bytes.empty()) {
    std::memcpy(&v, bytes.data(), std::min(bytes.size(), sizeof(v)));
  }
  return v;
}

}  // namespace

void MergeMaxU64(std::vector<std::byte>& into,
                 std::span<const std::byte> delta) {
  // Empty-join-empty stays empty: an absent state encodes 0, and widening
  // it to 8 zero bytes would break bytewise idempotence (merge(a, a) == a).
  if (into.empty() && delta.empty()) return;
  const std::uint64_t joined = std::max(LoadU64(into), LoadU64(delta));
  into.resize(sizeof(joined));
  std::memcpy(into.data(), &joined, sizeof(joined));
}

void MergeMaxU32Lanes(std::vector<std::byte>& into,
                      std::span<const std::byte> delta) {
  if (delta.size() > into.size()) into.resize(delta.size());
  for (std::size_t off = 0; off + 4 <= delta.size(); off += 4) {
    const std::uint32_t joined =
        std::max(LoadU32(std::span(into).subspan(off, 4)),
                 LoadU32(delta.subspan(off, 4)));
    std::memcpy(into.data() + off, &joined, sizeof(joined));
  }
  // A trailing partial lane (state not a multiple of 4) joins bytewise so
  // the merge stays idempotent for any blob length.
  const std::size_t tail = delta.size() - delta.size() % 4;
  for (std::size_t off = tail; off < delta.size(); ++off) {
    into[off] = std::max(into[off], delta[off]);
  }
}

void MergeOrBytes(std::vector<std::byte>& into,
                  std::span<const std::byte> delta) {
  if (delta.size() > into.size()) into.resize(delta.size());
  for (std::size_t i = 0; i < delta.size(); ++i) into[i] |= delta[i];
}

double MeasureU64(std::span<const std::byte> state) {
  return static_cast<double>(LoadU64(state));
}

double MeasureSumU32Lanes(std::span<const std::byte> state) {
  double sum = 0.0;
  std::size_t off = 0;
  for (; off + 4 <= state.size(); off += 4) {
    sum += LoadU32(state.subspan(off, 4));
  }
  for (; off < state.size(); ++off) {
    sum += std::to_integer<unsigned>(state[off]);
  }
  return sum;
}

double MeasurePopcount(std::span<const std::byte> state) {
  std::size_t bits = 0;
  for (const std::byte b : state) {
    bits += std::popcount(std::to_integer<unsigned>(b));
  }
  return static_cast<double>(bits);
}

void ConsistencyPolicy::Merge(std::vector<std::byte>& into,
                              std::span<const std::byte> delta) const {
  into.assign(delta.begin(), delta.end());
}

namespace {

class SingleOwnerPolicy final : public ConsistencyPolicy {
 public:
  ConsistencyMode mode() const override {
    return ConsistencyMode::kSingleOwner;
  }
};

class ReplicatedReadPolicy final : public ConsistencyPolicy {
 public:
  explicit ReplicatedReadPolicy(SimDuration bound) : bound_(bound) {}

  ConsistencyMode mode() const override {
    return ConsistencyMode::kReplicatedRead;
  }
  bool AllowLocalRead(SimDuration staleness) const override {
    return staleness <= bound_;
  }
  SimDuration staleness_bound() const override { return bound_; }

 private:
  SimDuration bound_;
};

class MergeablePolicy final : public ConsistencyPolicy {
 public:
  MergeablePolicy(MergeFn merge, MeasureFn measure, SimDuration interval)
      : merge_(merge), measure_(measure), interval_(interval) {}

  ConsistencyMode mode() const override { return ConsistencyMode::kMergeable; }
  bool LeaseRequired() const override { return false; }
  SimDuration merge_interval() const override { return interval_; }
  void Merge(std::vector<std::byte>& into,
             std::span<const std::byte> delta) const override {
    merge_(into, delta);
  }
  double Measure(std::span<const std::byte> state) const override {
    return measure_ != nullptr ? measure_(state) : 0.0;
  }

 private:
  MergeFn merge_;
  MeasureFn measure_;
  SimDuration interval_;
};

}  // namespace

std::unique_ptr<ConsistencyPolicy> ConsistencyPolicy::Make(
    const StateTraits& traits) {
  switch (traits.mode) {
    case ConsistencyMode::kSingleOwner:
      break;
    case ConsistencyMode::kReplicatedRead:
      return std::make_unique<ReplicatedReadPolicy>(
          traits.staleness_bound > 0 ? traits.staleness_bound
                                     : kDefaultStalenessBound);
    case ConsistencyMode::kMergeable:
      if (traits.merge == nullptr) {
        RP_LOG(kWarn) << "mergeable mode declared without a merge function; "
                         "falling back to single-owner";
        break;
      }
      return std::make_unique<MergeablePolicy>(
          traits.merge, traits.measure,
          traits.merge_interval > 0 ? traits.merge_interval
                                    : kDefaultMergeInterval);
  }
  return std::make_unique<SingleOwnerPolicy>();
}

}  // namespace redplane::core
