// Bounded-inconsistency tracking (§4.4, §5.5).
//
// In bounded-inconsistency mode the system guarantees recovery to a state no
// older than ε.  The tracker watches, per partition key, when the last
// complete snapshot round was fully acknowledged; if the age of the newest
// complete round exceeds the bound, an application-specific action fires
// (e.g. drop further packets or declare the switch failed).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/types.h"
#include "net/flow.h"

namespace redplane::core {

class EpsilonTracker {
 public:
  /// `bound` is ε; `on_exceeded` fires (once per violation episode) when a
  /// key's newest complete snapshot is older than ε.
  EpsilonTracker(SimDuration bound,
                 std::function<void(const net::PartitionKey&)> on_exceeded);

  /// Records that snapshot round `round` of `key` has `total` slots.
  void BeginRound(const net::PartitionKey& key, std::uint64_t round,
                  std::uint32_t total, SimTime started_at);

  /// Records an ack for one slot of (key, round).
  void SlotAcked(const net::PartitionKey& key, std::uint64_t round,
                 SimTime now);

  /// Age of the newest fully-acknowledged snapshot of `key`, or -1 if none.
  SimDuration Staleness(const net::PartitionKey& key, SimTime now) const;

  /// Checks all keys against the bound; invokes the callback on violations.
  void Check(SimTime now);

  /// Observer invoked for every key on every Check() with the observed
  /// staleness (not just violations) — feeds the staleness histogram and the
  /// audit ε monitor.  A key with no complete snapshot yet conservatively
  /// reports `now` as its age (the same value Check() tests the bound on).
  void SetObserver(std::function<void(const net::PartitionKey& key,
                                      SimDuration staleness, SimTime now)>
                       observer) {
    observer_ = std::move(observer);
  }

  SimDuration bound() const { return bound_; }
  std::uint64_t violations() const { return violations_; }

 private:
  struct KeyState {
    std::uint64_t round = 0;
    std::uint32_t total = 0;
    std::uint32_t acked = 0;
    SimTime round_started_at = 0;
    /// Start time of the newest round that fully acked (its data is at
    /// least as fresh as this instant).
    SimTime last_complete_at = -1;
    bool in_violation = false;
  };

  SimDuration bound_;
  std::function<void(const net::PartitionKey&)> on_exceeded_;
  std::function<void(const net::PartitionKey&, SimDuration, SimTime)> observer_;
  std::unordered_map<net::PartitionKey, KeyState> keys_;
  std::uint64_t violations_ = 0;
};

}  // namespace redplane::core
