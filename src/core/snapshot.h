// Lazy snapshotting of register arrays (paper §5.4, Algorithm 1).
//
// The switch architecture permits one access per register array per packet,
// so an atomic copy of a whole array is impossible.  Instead two copies of
// the structure are interleaved: a 1-bit flag names the active copy and a
// per-index 1-bit array records which copy each index last updated.  The
// first packet to touch an index after a snapshot flip synchronizes the two
// copies before updating; snapshot-read packets then harvest the frozen
// pre-flip values while traffic keeps updating the live copy.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "dataplane/register_array.h"
#include "net/flow.h"

namespace redplane::core {

template <typename T>
class LazySnapshotter {
 public:
  LazySnapshotter(std::string name, std::size_t slots)
      : values_(name + "/pairs", slots),
        last_updated_(name + "/last_updated", slots, 0),
        active_flag_(name + "/active", 1, 0) {}

  std::size_t slots() const { return values_.size(); }

  /// Data-plane update of slot `index` (SKETCH_UPDATE in Algorithm 1):
  /// applies `fn` to the live value and returns the result.
  T Update(const dp::PipelinePass& pass, std::size_t index,
           const std::function<T(T)>& fn) {
    const std::uint8_t active = active_flag_.Read(pass, 0);
    const std::uint8_t last = last_updated_.ReadModifyWrite(
        pass, index, [active](std::uint8_t& v) {
          const std::uint8_t old = v;
          v = active;
          return old;
        });
    return values_.ReadModifyWrite(pass, index, [&](std::pair<T, T>& pair) {
      T& active_val = active == 0 ? pair.first : pair.second;
      T& other_val = active == 0 ? pair.second : pair.first;
      if (last != active) {
        // First touch since the flip: synchronize copies, then update the
        // active one; the inactive copy now preserves the snapshot value.
        active_val = other_val;
      }
      active_val = fn(active_val);
      return active_val;
    });
  }

  /// Begins a snapshot: flips the active copy.  Must not be called while a
  /// previous snapshot burst is still being read (callers gate on period >
  /// burst length; the hardware enforces the same by design).
  void BeginSnapshot(const dp::PipelinePass& pass) {
    active_flag_.ReadModifyWrite(pass, 0, [](std::uint8_t& v) {
      v ^= 1;
      return v;
    });
  }

  /// Snapshot read of slot `index` (SNAPSHOT_READ in Algorithm 1): returns
  /// the value the slot held at the moment of the flip.
  T SnapshotRead(const dp::PipelinePass& pass, std::size_t index) {
    const std::uint8_t active = active_flag_.Read(pass, 0);
    const std::uint8_t last = last_updated_.ReadModifyWrite(
        pass, index, [active](std::uint8_t& v) {
          const std::uint8_t old = v;
          v = active;
          return old;
        });
    return values_.ReadModifyWrite(pass, index, [&](std::pair<T, T>& pair) {
      T& active_val = active == 0 ? pair.first : pair.second;
      T& other_val = active == 0 ? pair.second : pair.first;
      if (last != active) {
        // Untouched since the flip: the previously-live copy still holds
        // the snapshot value; synchronize so later updates start from it.
        active_val = other_val;
        return other_val;
      }
      // Touched since the flip: the inactive copy preserves the snapshot.
      return other_val;
    });
  }

  /// Control-plane peek at the live value (tests/verification only).
  T PeekLive(std::size_t index) const {
    const std::uint8_t active = active_flag_.Peek(0);
    const std::uint8_t last = last_updated_.Peek(index);
    const auto& pair = values_.Peek(index);
    const T active_val = active == 0 ? pair.first : pair.second;
    const T other_val = active == 0 ? pair.second : pair.first;
    return last == active ? active_val : other_val;
  }

  void Reset() {
    values_.Reset();
    last_updated_.Reset();
    active_flag_.Reset();
  }

  std::size_t SramBytes() const {
    return values_.SramBytes() + last_updated_.SramBytes() +
           active_flag_.SramBytes();
  }

 private:
  dp::RegisterArray<std::pair<T, T>> values_;
  dp::RegisterArray<std::uint8_t> last_updated_;
  dp::RegisterArray<std::uint8_t> active_flag_;
};

/// Implemented by write-centric applications that opt into the
/// bounded-inconsistency mode.  The RedPlane harness drives the packet
/// generator: every T_snap it begins a snapshot per key and emits one
/// kSnapshotRepl message per slot.
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;

  /// The partition keys whose structures are snapshotted (e.g. one per
  /// tenant VLAN for the heavy-hitter detector).
  virtual std::vector<net::PartitionKey> SnapshotKeys() const = 0;

  /// Slots per structure (the packet generator batch size).
  virtual std::uint32_t NumSnapshotSlots() const = 0;

  /// Flips the double buffer for `key` (first packet of a burst).
  virtual void BeginSnapshot(const net::PartitionKey& key) = 0;

  /// Reads snapshot slot `index` for `key`, serialized for replication.
  virtual std::vector<std::byte> ReadSnapshotSlot(const net::PartitionKey& key,
                                                  std::uint32_t index) = 0;
};

}  // namespace redplane::core
