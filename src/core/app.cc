#include "core/app.h"

namespace redplane::core {

std::optional<net::PartitionKey> SwitchApp::KeyOf(
    const net::Packet& pkt) const {
  auto flow = pkt.Flow();
  if (!flow.has_value()) return std::nullopt;
  return net::PartitionKey::OfFlow(*flow);
}

}  // namespace redplane::core
