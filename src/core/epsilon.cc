#include "core/epsilon.h"

namespace redplane::core {

EpsilonTracker::EpsilonTracker(
    SimDuration bound,
    std::function<void(const net::PartitionKey&)> on_exceeded)
    : bound_(bound), on_exceeded_(std::move(on_exceeded)) {}

void EpsilonTracker::BeginRound(const net::PartitionKey& key,
                                std::uint64_t round, std::uint32_t total,
                                SimTime started_at) {
  auto& st = keys_[key];
  st.round = round;
  st.total = total;
  st.acked = 0;
  st.round_started_at = started_at;
}

void EpsilonTracker::SlotAcked(const net::PartitionKey& key,
                               std::uint64_t round, SimTime now) {
  (void)now;
  auto it = keys_.find(key);
  if (it == keys_.end()) return;
  auto& st = it->second;
  if (round != st.round) return;  // ack for a superseded round
  if (st.acked >= st.total) return;
  if (++st.acked == st.total) {
    // The snapshot captured state as of the flip (round start); that is the
    // freshness the store now guarantees.
    st.last_complete_at = st.round_started_at;
    st.in_violation = false;
  }
}

SimDuration EpsilonTracker::Staleness(const net::PartitionKey& key,
                                      SimTime now) const {
  auto it = keys_.find(key);
  if (it == keys_.end() || it->second.last_complete_at < 0) return -1;
  return now - it->second.last_complete_at;
}

void EpsilonTracker::Check(SimTime now) {
  for (auto& [key, st] : keys_) {
    const SimDuration age =
        st.last_complete_at < 0 ? now : now - st.last_complete_at;
    if (observer_) observer_(key, age, now);
    if (age > bound_) {
      if (!st.in_violation) {
        st.in_violation = true;
        ++violations_;
        if (on_exceeded_) on_exceeded_(key);
      }
    } else {
      st.in_violation = false;
    }
  }
}

}  // namespace redplane::core
