#include "core/analytic.h"

#include <algorithm>

namespace redplane::core {

AnalyticResult PredictThroughput(const AnalyticConfig& config) {
  AnalyticResult result;

  // Store bound: every synchronous update is one request a store server
  // must serve; buffered reads also visit the store but are pure echoes,
  // costing roughly a third of a write's service time.
  const double store_capacity =
      config.store_rps * std::max(1, config.num_stores);
  const double store_demand_per_pkt =
      config.sync_update_fraction + config.read_buffer_fraction / 3.0;
  const double store_bound = store_demand_per_pkt > 0
                                 ? store_capacity / store_demand_per_pkt
                                 : 1e30;

  // Data-link bound: original traffic occupies the fabric bottleneck
  // (aggregation->core in the testbed) with Ethernet wire framing
  // (preamble + IFG + FCS spacing: +38 B per frame, capping 64 B packets
  // at ~122.5 Mpps on 100 Gbps, the paper's observed maximum); a packet
  // that buffers through the network re-traverses the path once more.
  // Replication traffic rides a disjoint path toward the store servers
  // and is charged separately.
  const double frame_bytes = std::max(config.packet_bytes, 64.0) + 38.0;
  const double per_pkt_protocol_bytes =
      (config.sync_update_fraction + config.read_buffer_fraction) * 2.0 *
      (frame_bytes + config.protocol_overhead_bytes);
  const double link_bound =
      config.link_bps /
      (frame_bytes * (1.0 + config.read_buffer_fraction) * 8.0);

  // Store-path bound: each synchronous update (and each buffered read)
  // sends a request carrying the piggybacked packet and receives the echo;
  // both cross the store servers' NICs.  Periodic snapshot traffic shares
  // the same path.
  const double store_path_bps =
      std::max(1.0, config.store_link_bps * std::max(1, config.num_stores) -
                        config.snapshot_bps);
  const double store_path_bound =
      per_pkt_protocol_bytes > 0
          ? store_path_bps / (per_pkt_protocol_bytes * 8.0)
          : 1e30;

  const double bound =
      std::min({config.offered_pps, link_bound, config.switch_pps,
                store_bound, store_path_bound});
  result.throughput_pps = bound;
  if (bound == config.offered_pps) {
    result.bottleneck = "offered";
  } else if (bound == store_bound || bound == store_path_bound) {
    result.bottleneck = "store";
  } else if (bound == link_bound) {
    result.bottleneck = "link";
  } else {
    result.bottleneck = "switch";
  }
  result.protocol_bw_fraction =
      per_pkt_protocol_bytes / (frame_bytes + per_pkt_protocol_bytes);
  return result;
}

double SnapshotBandwidthBps(int num_structures, int slots_per_structure,
                            double snapshot_hz, double bytes_per_message) {
  // One message per slot per period; each structure contributes its value to
  // the per-slot message (the generator packs one value per structure into
  // the slot's message, so message size grows with structure count).
  const double msg_bytes = std::max(64.0, bytes_per_message +
                                              4.0 * num_structures);
  return slots_per_structure * snapshot_hz * msg_bytes * 8.0;
}

}  // namespace redplane::core
