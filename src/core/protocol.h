// The RedPlane state replication protocol: message model and wire codec.
//
// Messages follow the paper's Fig. 4 format: standard Ethernet/IP/UDP headers
// addressing the state store or the switch, then a RedPlane header (sequence
// number, message type, flow key), then — depending on type — the state value
// and/or a piggybacked output packet.  The piggyback is a fully serialized
// inner packet: the network and the state store's memory act as delay-line
// storage for outputs that may not be released until their state update is
// durable (§5.1, "Piggybacking output packets").
//
// Encode-once discipline: `EncodeMsg` runs once per request at the message's
// origin and produces an immutable `net::Buffer`.  Every mutable header field
// sits at a fixed offset before the variable-length key/state/piggyback tail
// (see `wire::` below), so chain replicas patch `chain_hop` and the head's
// stamped decision (`ack`, `seq`) in place via `MsgView` setters and forward
// the same bytes verbatim — a hop never re-serializes the state value or the
// piggybacked packet.  Read paths use the view accessors and materialize a
// full `Msg` only where state is retained.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "core/consistency.h"
#include "net/buffer.h"
#include "net/codec.h"
#include "net/flow.h"
#include "net/packet.h"

namespace redplane::core {

/// UDP port the state store listens on; switches use it as the source port
/// of requests so responses route back symmetrically.
constexpr std::uint16_t kRedPlaneUdpPort = 5123;

/// Request messages (switch -> state store).
/// Responses (state store -> switch) all use type kAck with an AckKind.
enum class MsgType : std::uint8_t {
  /// "Init": lease request for a flow this switch has no state for.  The
  /// store grants a lease and returns existing state if the flow previously
  /// lived on another switch (migration, paper step 4).
  kLeaseNewReq = 1,
  /// "Repl": a state write with lease renewal; carries the new state value
  /// and the piggybacked output packet (paper step 2).
  kLeaseRenewReq = 2,
  /// Explicit periodic lease renewal with no state write (read-centric
  /// flows renew every lease_renew_interval, §5.3).
  kLeaseRenewOnly = 3,
  /// A read packet that arrived while a write was still in flight; buffered
  /// through the network until the store has applied the latest write
  /// (§5.1, end of "Piggybacking output packets").
  kReadBufferReq = 4,
  /// Bounded-inconsistency mode: one snapshot slot value (§5.4).
  kSnapshotRepl = 5,
  /// Any response from the state store.
  kAck = 6,
  /// Mergeable multi-writer mode: the sender's full local state, to be
  /// joined into the store's copy with the app's declared merge function
  /// (idempotent, so retransmission/replay is safe without a seq filter).
  kMergeDelta = 7,
  /// Replicated-read mode: subscribe the sending switch to replica pushes
  /// for this flow (the store pushes state on every applied write).
  kReplicaSubscribe = 8,
};

enum class AckKind : std::uint8_t {
  kNone = 0,
  /// Lease granted for a new flow (no prior state).
  kLeaseGrantNew = 1,
  /// Lease granted with migrated state attached.
  kLeaseGrantMigrate = 2,
  /// Write applied (or was a duplicate); piggyback returned for release.
  kWriteAck = 3,
  /// Buffered read returned for release.
  kReadReturn = 4,
  /// Snapshot slot recorded.
  kSnapshotAck = 5,
  /// Lease renewal (no write) confirmed.
  kRenewAck = 6,
  /// Lease denied: another switch holds it.  (The store normally buffers
  /// instead of denying; deny is used when buffering capacity is exceeded.)
  kLeaseDenied = 7,
  /// Merge delta joined at the store; carries the merged global state back
  /// so the sending switch can fold remote writers into its local copy.
  kMergeAck = 8,
  /// Unsolicited replica push to a subscribed switch (replicated-read).
  kReplicaPush = 9,
};

/// Fixed byte offsets of the RedPlane header within an encoded message.
/// Every field a chain hop may patch precedes the variable-length key, so
/// its offset is layout-constant — this is what makes in-place patching of
/// forwarded messages safe (DESIGN.md §8).
namespace wire {
constexpr std::size_t kOffMagic = 0;          // u16
constexpr std::size_t kOffType = 2;           // u8
constexpr std::size_t kOffAck = 3;            // u8
constexpr std::size_t kOffSeq = 4;            // u64
constexpr std::size_t kOffSnapshotIndex = 12; // u32
constexpr std::size_t kOffReplyTo = 16;       // u32
constexpr std::size_t kOffChainHop = 20;      // u8
constexpr std::size_t kOffSpanId = 21;        // u64
constexpr std::size_t kOffMode = 29;          // u8 (ConsistencyMode)
constexpr std::size_t kOffKeyKind = 30;       // u8, then the key body
}  // namespace wire

/// A RedPlane protocol message (header + optional state + optional
/// piggybacked output packet).
struct Msg {
  MsgType type = MsgType::kAck;
  AckKind ack = AckKind::kNone;
  /// Per-flow monotonically increasing sequence number (§5.2).
  std::uint64_t seq = 0;
  net::PartitionKey key;
  /// State value: the write payload on kLeaseRenewReq / kSnapshotRepl, the
  /// migrated state on kLeaseGrantMigrate.
  std::vector<std::byte> state;
  /// Snapshot slot index (kSnapshotRepl only).
  std::uint32_t snapshot_index = 0;
  /// Address the final response should be sent to (the requesting switch).
  /// Carried so the tail of a replication chain can answer directly.
  net::Ipv4Addr reply_to;
  /// 0 for a request from a switch; incremented per chain-internal hop.
  std::uint8_t chain_hop = 0;
  /// Observability span id (0 = untraced).  Stamped by the originating
  /// switch, carried verbatim through chain forwarding, and echoed in the
  /// store's response so every trace record of one request's lifecycle
  /// shares an id (obs/spans.h).  Not part of the protocol state machine.
  std::uint64_t span_id = 0;
  /// Consistency mode of the flow this message belongs to (DESIGN.md §14).
  /// Stamped by the originating switch; the store uses it to pick the
  /// apply path (overwrite vs merge) without per-flow app knowledge.
  ConsistencyMode mode = ConsistencyMode::kSingleOwner;
  /// Piggybacked output packet, if any.
  std::optional<net::Packet> piggyback;
  /// Already-serialized piggyback bytes, spliced verbatim into the encoding
  /// when `piggyback` is empty.  Lets a store echo a request's piggyback in
  /// its response without ever parsing or re-serializing the inner packet.
  net::BufferView piggyback_raw;
};

/// Serializes `msg` into payload bytes (everything after the UDP header).
/// Called once per message at its origin; forwarding patches the buffer.
net::Buffer EncodeMsg(const Msg& msg);

/// Parses payload bytes back into a message, including the piggybacked
/// inner packet; nullopt if malformed.
std::optional<Msg> DecodeMsg(std::span<const std::byte> payload);

/// Size in bytes of the RedPlane header alone (no state, no piggyback); used
/// for bandwidth accounting and mirror truncation.
std::size_t HeaderWireSize(const net::PartitionKey& key);

/// A validated, lazily-decoded window onto an encoded message.  Copies share
/// the underlying buffer; accessors read fields at their wire offsets, and
/// the Set* methods patch mutable header fields in place (copy-on-write if
/// the buffer is shared), so chain hops forward without re-encoding.
class MsgView {
 public:
  MsgView() = default;

  /// Validates magic, key kind and section bounds (the piggyback bytes are
  /// NOT parsed — use PiggybackPacket()/DecodeMsg where they are consumed).
  static std::optional<MsgView> Parse(net::BufferView payload);

  MsgType type() const {
    return static_cast<MsgType>(bytes_.U8At(wire::kOffType));
  }
  AckKind ack() const {
    return static_cast<AckKind>(bytes_.U8At(wire::kOffAck));
  }
  std::uint64_t seq() const { return bytes_.U64At(wire::kOffSeq); }
  std::uint32_t snapshot_index() const {
    return bytes_.U32At(wire::kOffSnapshotIndex);
  }
  net::Ipv4Addr reply_to() const {
    return net::Ipv4Addr(bytes_.U32At(wire::kOffReplyTo));
  }
  std::uint8_t chain_hop() const { return bytes_.U8At(wire::kOffChainHop); }
  std::uint64_t span_id() const { return bytes_.U64At(wire::kOffSpanId); }
  ConsistencyMode mode() const {
    return static_cast<ConsistencyMode>(bytes_.U8At(wire::kOffMode));
  }
  const net::PartitionKey& key() const { return key_; }

  /// The state value, as a zero-copy slice of the message bytes.
  net::BufferView state() const { return bytes_.Slice(state_off_, state_len_); }
  bool has_piggyback() const { return piggy_len_ > 0; }
  /// The serialized piggyback, as a zero-copy slice (for verbatim echo).
  net::BufferView piggyback_bytes() const {
    return bytes_.Slice(state_off_ + state_len_, piggy_len_);
  }
  /// Parses the piggybacked inner packet on demand; nullopt if absent or
  /// malformed.
  std::optional<net::Packet> PiggybackPacket() const;

  /// --- in-place header patching (copy-on-write when shared) ---
  void SetType(MsgType t) {
    bytes_.PatchU8(wire::kOffType, static_cast<std::uint8_t>(t));
  }
  void SetAck(AckKind a) {
    bytes_.PatchU8(wire::kOffAck, static_cast<std::uint8_t>(a));
  }
  void SetSeq(std::uint64_t s) { bytes_.PatchU64(wire::kOffSeq, s); }
  void SetSnapshotIndex(std::uint32_t i) {
    bytes_.PatchU32(wire::kOffSnapshotIndex, i);
  }
  void SetChainHop(std::uint8_t h) { bytes_.PatchU8(wire::kOffChainHop, h); }
  void SetSpanId(std::uint64_t s) { bytes_.PatchU64(wire::kOffSpanId, s); }
  void SetMode(ConsistencyMode m) {
    bytes_.PatchU8(wire::kOffMode, static_cast<std::uint8_t>(m));
  }

  /// The full encoded message — forward these bytes verbatim.
  const net::BufferView& bytes() const { return bytes_; }

  /// Materializes header + state into a Msg.  The piggyback stays raw
  /// (`piggyback_raw`), so materializing never parses the inner packet.
  Msg ToMsg() const;

 private:
  net::BufferView bytes_;
  net::PartitionKey key_;
  std::uint32_t state_off_ = 0;
  std::uint16_t state_len_ = 0;
  std::uint16_t piggy_len_ = 0;
};

/// Builds the full UDP packet carrying `msg` from `src_ip` to `dst_ip`.
/// Requests target the store's kRedPlaneUdpPort; acks target the switch's.
net::Packet MakeProtocolPacket(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                               const Msg& msg);

/// Same, but carrying an already-encoded message verbatim (chain forwarding,
/// retransmission): no protocol bytes are touched or copied.
net::Packet MakeProtocolPacketRaw(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                                  net::BufferView payload);

/// True if `pkt` looks like a RedPlane protocol packet (UDP to/from the
/// RedPlane port).
bool IsProtocolPacket(const net::Packet& pkt);

/// Decodes the protocol message carried by `pkt` (which must satisfy
/// IsProtocolPacket); nullopt if the payload is malformed.
std::optional<Msg> DecodeFromPacket(const net::Packet& pkt);

/// Number of EncodeMsg calls since reset — the copy-regression tests assert
/// forwarding paths stay encode-free.
std::uint64_t EncodeCount();
void ResetEncodeCount();

}  // namespace redplane::core
