// The RedPlane state replication protocol: message model and wire codec.
//
// Messages follow the paper's Fig. 4 format: standard Ethernet/IP/UDP headers
// addressing the state store or the switch, then a RedPlane header (sequence
// number, message type, flow key), then — depending on type — the state value
// and/or a piggybacked output packet.  The piggyback is a fully serialized
// inner packet: the network and the state store's memory act as delay-line
// storage for outputs that may not be released until their state update is
// durable (§5.1, "Piggybacking output packets").
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "net/codec.h"
#include "net/flow.h"
#include "net/packet.h"

namespace redplane::core {

/// UDP port the state store listens on; switches use it as the source port
/// of requests so responses route back symmetrically.
constexpr std::uint16_t kRedPlaneUdpPort = 5123;

/// Request messages (switch -> state store).
/// Responses (state store -> switch) all use type kAck with an AckKind.
enum class MsgType : std::uint8_t {
  /// "Init": lease request for a flow this switch has no state for.  The
  /// store grants a lease and returns existing state if the flow previously
  /// lived on another switch (migration, paper step 4).
  kLeaseNewReq = 1,
  /// "Repl": a state write with lease renewal; carries the new state value
  /// and the piggybacked output packet (paper step 2).
  kLeaseRenewReq = 2,
  /// Explicit periodic lease renewal with no state write (read-centric
  /// flows renew every lease_renew_interval, §5.3).
  kLeaseRenewOnly = 3,
  /// A read packet that arrived while a write was still in flight; buffered
  /// through the network until the store has applied the latest write
  /// (§5.1, end of "Piggybacking output packets").
  kReadBufferReq = 4,
  /// Bounded-inconsistency mode: one snapshot slot value (§5.4).
  kSnapshotRepl = 5,
  /// Any response from the state store.
  kAck = 6,
};

enum class AckKind : std::uint8_t {
  kNone = 0,
  /// Lease granted for a new flow (no prior state).
  kLeaseGrantNew = 1,
  /// Lease granted with migrated state attached.
  kLeaseGrantMigrate = 2,
  /// Write applied (or was a duplicate); piggyback returned for release.
  kWriteAck = 3,
  /// Buffered read returned for release.
  kReadReturn = 4,
  /// Snapshot slot recorded.
  kSnapshotAck = 5,
  /// Lease renewal (no write) confirmed.
  kRenewAck = 6,
  /// Lease denied: another switch holds it.  (The store normally buffers
  /// instead of denying; deny is used when buffering capacity is exceeded.)
  kLeaseDenied = 7,
};

/// A RedPlane protocol message (header + optional state + optional
/// piggybacked output packet).
struct Msg {
  MsgType type = MsgType::kAck;
  AckKind ack = AckKind::kNone;
  /// Per-flow monotonically increasing sequence number (§5.2).
  std::uint64_t seq = 0;
  net::PartitionKey key;
  /// State value: the write payload on kLeaseRenewReq / kSnapshotRepl, the
  /// migrated state on kLeaseGrantMigrate.
  std::vector<std::byte> state;
  /// Snapshot slot index (kSnapshotRepl only).
  std::uint32_t snapshot_index = 0;
  /// Address the final response should be sent to (the requesting switch).
  /// Carried so the tail of a replication chain can answer directly.
  net::Ipv4Addr reply_to;
  /// 0 for a request from a switch; incremented per chain-internal hop.
  std::uint8_t chain_hop = 0;
  /// Piggybacked output packet, if any.
  std::optional<net::Packet> piggyback;
};

/// Serializes `msg` into payload bytes (everything after the UDP header).
std::vector<std::byte> EncodeMsg(const Msg& msg);

/// Parses payload bytes back into a message; nullopt if malformed.
std::optional<Msg> DecodeMsg(std::span<const std::byte> payload);

/// Size in bytes of the RedPlane header alone (no state, no piggyback); used
/// for bandwidth accounting and mirror truncation.
std::size_t HeaderWireSize(const net::PartitionKey& key);

/// Builds the full UDP packet carrying `msg` from `src_ip` to `dst_ip`.
/// Requests target the store's kRedPlaneUdpPort; acks target the switch's.
net::Packet MakeProtocolPacket(net::Ipv4Addr src_ip, net::Ipv4Addr dst_ip,
                               const Msg& msg);

/// True if `pkt` looks like a RedPlane protocol packet (UDP to/from the
/// RedPlane port).
bool IsProtocolPacket(const net::Packet& pkt);

/// Decodes the protocol message carried by `pkt` (which must satisfy
/// IsProtocolPacket); nullopt if the payload is malformed.
std::optional<Msg> DecodeFromPacket(const net::Packet& pkt);

}  // namespace redplane::core
