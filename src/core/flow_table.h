// Switch-side per-flow protocol state.
//
// On hardware this is the SRAM the paper charges in §7.4: a key-digest
// table resolving the flow to a slot, plus register arrays holding the
// lease expiration time, the current sequence number, and the last
// acknowledged sequence number.  The model now keeps the same layout: an
// open-addressed digest index maps a flow to a stable slot, and the four
// hot fields live in separate dense arrays (`status_`, `lease_expiry_`,
// `cur_seq_`, `last_acked_`) — one software lane per hardware register
// array — so the per-packet path touches only the lanes it reads.
// Everything the per-packet path does not need (the application state
// blob, pending-send bookkeeping, renew-timer plumbing) sits in a parallel
// cold array, the analogue of control-plane-managed SRAM.
//
// Slots are stable for the lifetime of an entry and carry a generation
// that bumps on erase, so timer callbacks holding (slot, gen) detect
// stale references without a side table.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "common/types.h"
#include "net/flow.h"

namespace redplane::core {

enum class FlowStatus : std::uint8_t {
  /// No lease; an Init request is in flight (or about to be sent).
  kInitPending,
  /// Lease held; state installed and usable.
  kActive,
};

class FlowTable {
 public:
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// Cold per-flow state: everything off the per-packet hot path.
  struct Cold {
    net::PartitionKey key;
    /// The application's per-flow state (conceptually the app's registers /
    /// table entries for this flow).
    std::vector<std::byte> state;
    /// Send times of outstanding lease-renewing requests, by sequence
    /// number; consulted on ack to compute the conservative expiry.
    std::deque<std::pair<std::uint64_t, SimTime>> pending_sends;
    /// Send time of the outstanding Init (for grant RTT accounting).
    SimTime init_sent_at = 0;
    /// Send time of the outstanding explicit renew; 0 when none.  Cleared
    /// on timeout so a late ack does not extend the lease.
    SimTime renew_sent_at = 0;
    /// Span id of the most recent write request (trace correlation).
    std::uint64_t last_write_span = 0;
    /// Pending renew-timeout timer (opaque sim::EventId; 0 = none).
    std::uint64_t renew_timer = 0;
    /// How many times packets of this flow have looped through the network
    /// buffer while waiting for the lease grant.
    std::uint32_t init_loops = 0;
    /// True once state has been installed (grant received).
    bool has_state = false;
    /// True while an explicit kLeaseRenewOnly is outstanding.
    bool renew_in_flight = false;
    /// --- consistency-mode spectrum lanes (DESIGN.md §14) ---
    /// Mergeable mode: local state changed since the last merge-delta push.
    bool merge_dirty = false;
    /// Replicated-read mode: kReplicaSubscribe already sent for this flow.
    bool replica_subscribed = false;
  };

  /// Read-only view of one flow for tests, dumps, and diagnostics; the hot
  /// path uses slot indices directly.  Default-constructed (or Find miss)
  /// is falsy.
  class FlowRef {
   public:
    FlowRef() = default;
    FlowRef(const FlowTable* t, std::uint32_t slot) : t_(t), slot_(slot) {}

    explicit operator bool() const { return t_ != nullptr; }

    FlowStatus status() const { return t_->status_[slot_]; }
    std::uint64_t cur_seq() const { return t_->cur_seq_[slot_]; }
    std::uint64_t last_acked_seq() const { return t_->last_acked_[slot_]; }
    SimTime lease_expiry() const { return t_->lease_expiry_[slot_]; }
    bool has_state() const { return t_->cold_[slot_].has_state; }
    bool renew_in_flight() const { return t_->cold_[slot_].renew_in_flight; }
    std::uint32_t init_loops() const { return t_->cold_[slot_].init_loops; }
    const std::vector<std::byte>& state() const {
      return t_->cold_[slot_].state;
    }
    std::size_t pending_send_count() const {
      return t_->cold_[slot_].pending_sends.size();
    }
    bool WritesInFlight() const { return t_->WritesInFlight(slot_); }
    bool LeaseActive(SimTime now) const {
      return t_->LeaseActive(slot_, now);
    }
    std::uint32_t slot() const { return slot_; }

   private:
    const FlowTable* t_ = nullptr;
    std::uint32_t slot_ = 0;
  };

  /// Slot of `key`, or kNilSlot.  O(1): digest probe + one key compare.
  std::uint32_t FindSlot(const net::PartitionKey& key) const;
  /// Slot of `key`, creating a default kInitPending entry if absent.
  std::uint32_t GetOrCreateSlot(const net::PartitionKey& key);

  FlowRef Find(const net::PartitionKey& key) const {
    const std::uint32_t slot = FindSlot(key);
    return slot == kNilSlot ? FlowRef() : FlowRef(this, slot);
  }

  void Erase(const net::PartitionKey& key);
  std::size_t Size() const { return count_; }

  /// --- hot lanes (the §7.4 register arrays), addressed by slot ---
  FlowStatus status(std::uint32_t slot) const { return status_[slot]; }
  void set_status(std::uint32_t slot, FlowStatus s) { status_[slot] = s; }
  std::uint64_t cur_seq(std::uint32_t slot) const { return cur_seq_[slot]; }
  void set_cur_seq(std::uint32_t slot, std::uint64_t v) {
    cur_seq_[slot] = v;
  }
  std::uint64_t NextSeq(std::uint32_t slot) { return ++cur_seq_[slot]; }
  std::uint64_t last_acked_seq(std::uint32_t slot) const {
    return last_acked_[slot];
  }
  void set_last_acked_seq(std::uint32_t slot, std::uint64_t v) {
    last_acked_[slot] = v;
  }
  SimTime lease_expiry(std::uint32_t slot) const {
    return lease_expiry_[slot];
  }
  void set_lease_expiry(std::uint32_t slot, SimTime t) {
    lease_expiry_[slot] = t;
  }

  bool WritesInFlight(std::uint32_t slot) const {
    return cur_seq_[slot] > last_acked_[slot];
  }
  bool LeaseActive(std::uint32_t slot, SimTime now) const {
    return status_[slot] == FlowStatus::kActive && lease_expiry_[slot] > now;
  }

  /// --- cold blob, addressed by slot ---
  Cold& cold(std::uint32_t slot) { return cold_[slot]; }
  const Cold& cold(std::uint32_t slot) const { return cold_[slot]; }

  /// Generation of `slot`; bumps on erase so (slot, gen) pairs held by
  /// timers invalidate themselves.
  std::uint32_t gen(std::uint32_t slot) const { return gen_[slot]; }
  bool Alive(std::uint32_t slot, std::uint32_t gen) const {
    return slot < live_.size() && live_[slot] != 0 && gen_[slot] == gen;
  }

  /// Resets `slot` to a fresh kInitPending entry (re-init of an expired
  /// flow), keeping slot and generation.
  void Reinit(std::uint32_t slot);

  /// Visits every (key, FlowRef) pair — diagnostics and table dumps.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::uint32_t s = 0; s < live_.size(); ++s) {
      if (live_[s] != 0) fn(cold_[s].key, FlowRef(this, s));
    }
  }

  /// Clears everything (switch failure: all SRAM state is lost).  The
  /// owner cancels per-entry timers first (see RedPlaneSwitch::Reset).
  void Reset();

  /// Records a lease-renewing request send for expiry accounting.  Entries
  /// older than `horizon` are dead — their request either got acked (and
  /// was popped) or passed the retransmit give-up point — so they are
  /// compacted away; dropping one is conservative (a very late ack then
  /// skips the lease extension).  The hard cap bounds the deque even with
  /// horizon 0.
  void NoteSend(std::uint32_t slot, std::uint64_t seq, SimTime now,
                SimDuration horizon = 0);

  /// Processes an ack for `seq`: advances last_acked_seq and extends the
  /// lease to (send time of that request) + lease_period.
  void NoteAck(std::uint32_t slot, std::uint64_t seq,
               SimDuration lease_period);

  /// Send time recorded for `seq`, or 0 (write RTT accounting).
  SimTime SendTimeOf(std::uint32_t slot, std::uint64_t seq) const;

  /// Send time of the oldest outstanding lease-renewing request, or 0 when
  /// none: how long the durable store view may trail this switch's local
  /// state (the replicated-read staleness measure, DESIGN.md §14).
  SimTime OldestPendingSendTime(std::uint32_t slot) const {
    const auto& pending = cold_[slot].pending_sends;
    return pending.empty() ? 0 : pending.front().second;
  }

  /// Digest-index health for the load-factor / max-probe gauges.
  struct IndexStats {
    std::size_t capacity = 0;
    std::size_t used = 0;
    std::size_t max_probe = 0;  // longest probe chain over occupied cells
  };
  /// O(index capacity); sampled by the fleet time-series exporter, never on
  /// the packet path.
  IndexStats IndexStatsNow() const;

 private:
  friend class FlowRef;

  std::size_t FindCell(std::uint64_t digest,
                       const net::PartitionKey& key) const;
  void EraseCell(std::size_t cell);
  void GrowIndex();

  std::vector<FlowStatus> status_;
  std::vector<SimTime> lease_expiry_;
  std::vector<std::uint64_t> cur_seq_;
  std::vector<std::uint64_t> last_acked_;
  std::vector<Cold> cold_;
  std::vector<std::uint32_t> gen_;
  std::vector<std::uint8_t> live_;
  std::vector<std::uint32_t> free_link_;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t count_ = 0;

  /// Open-addressed digest index (linear probe, power-of-two capacity,
  /// backward-shift deletion): cell = {digest, slot}; key equality is
  /// confirmed against the cold blob, so digest collisions only cost an
  /// extra probe.
  std::vector<std::uint64_t> idx_digest_;
  std::vector<std::uint32_t> idx_slot_;
  std::size_t idx_used_ = 0;
};

using FlowRef = FlowTable::FlowRef;

}  // namespace redplane::core
