// Switch-side per-flow protocol state.
//
// On hardware this is the SRAM the paper charges in §7.4: a key-digest table
// resolving the flow to a slot, plus register arrays holding the lease
// expiration time, the current sequence number, and the last acknowledged
// sequence number.  The model keeps the same fields (plus the application's
// per-flow state blob, standing in for the app's own tables/registers) in a
// hash map; the Table 2 bench charges the hardware layout separately.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "net/flow.h"

namespace redplane::core {

enum class FlowStatus : std::uint8_t {
  /// No lease; an Init request is in flight (or about to be sent).
  kInitPending,
  /// Lease held; state installed and usable.
  kActive,
};

struct FlowEntry {
  FlowStatus status = FlowStatus::kInitPending;
  /// The application's per-flow state (conceptually the app's registers /
  /// table entries for this flow).
  std::vector<std::byte> state;
  /// True once state has been installed (grant received).
  bool has_state = false;
  /// Last sequence number assigned to a write of this flow.
  std::uint64_t cur_seq = 0;
  /// Highest sequence number acknowledged by the state store.
  std::uint64_t last_acked_seq = 0;
  /// Local lease expiry (conservatively derived from request *send* times,
  /// so the switch always believes its lease ends no later than the store
  /// does).
  SimTime lease_expiry = 0;
  /// True while an explicit kLeaseRenewOnly is outstanding.
  bool renew_in_flight = false;
  /// Send times of outstanding lease-renewing requests, by sequence number;
  /// consulted on ack to compute the conservative expiry above.
  std::deque<std::pair<std::uint64_t, SimTime>> pending_sends;
  /// How many times packets of this flow have looped through the network
  /// buffer while waiting for the lease grant.
  std::uint32_t init_loops = 0;

  bool WritesInFlight() const { return cur_seq > last_acked_seq; }
  bool LeaseActive(SimTime now) const {
    return status == FlowStatus::kActive && lease_expiry > now;
  }
};

class FlowTable {
 public:
  FlowEntry& GetOrCreate(const net::PartitionKey& key);
  FlowEntry* Find(const net::PartitionKey& key);
  const FlowEntry* Find(const net::PartitionKey& key) const;
  void Erase(const net::PartitionKey& key);
  std::size_t Size() const { return entries_.size(); }

  /// Visits every (key, entry) pair — diagnostics and table dumps.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, entry] : entries_) fn(key, entry);
  }

  /// Clears everything (switch failure: all SRAM state is lost).
  void Reset() { entries_.clear(); }

  /// Records a lease-renewing request send for expiry accounting.
  static void NoteSend(FlowEntry& entry, std::uint64_t seq, SimTime now);

  /// Processes an ack for `seq`: advances last_acked_seq and extends the
  /// lease to (send time of that request) + lease_period.
  static void NoteAck(FlowEntry& entry, std::uint64_t seq,
                      SimDuration lease_period);

 private:
  std::unordered_map<net::PartitionKey, FlowEntry> entries_;
};

}  // namespace redplane::core
