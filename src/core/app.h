// The stateful in-switch application interface.
//
// An application is the paper's Definition 1: a transition function from
// (input packet, current state) to (output packets, new state).  State is
// partitioned by a key derived from the packet (KeyOf); the per-partition
// state travels as a byte blob so RedPlane can replicate it without knowing
// its structure.  Applications written against this interface run unchanged
// in three harnesses: plain (no fault tolerance), RedPlane-enabled, and the
// baseline fault-tolerance schemes of §2.2.
#pragma once

#include <cstring>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "core/consistency.h"
#include "net/flow.h"
#include "net/packet.h"

namespace redplane::core {

/// Defaults used when an app declares a weaker mode without tuning knobs.
constexpr SimDuration kDefaultStalenessBound = Milliseconds(1);
constexpr SimDuration kDefaultMergeInterval = Microseconds(100);

/// An app's declared point on the consistency spectrum (DESIGN.md §14).
///
/// The default — single-owner, no merge — is the paper's base protocol and
/// what every app gets unless it opts out.  Apps whose state forms a join-
/// semilattice declare `merge`/`measure` (and may declare kMergeable as
/// their native mode); read-heavy apps with a tolerable staleness window
/// declare kReplicatedRead plus a bound.  Deployments can pin any mode via
/// `RedPlaneConfig::mode_override` regardless of the declaration — the
/// declaration says what the app *tolerates*, the deployment says what it
/// *gets*.
struct StateTraits {
  ConsistencyMode mode = ConsistencyMode::kSingleOwner;
  /// Join for mergeable state; must be commutative/associative/idempotent.
  /// Required for kMergeable (declaring the mode without it falls back to
  /// single-owner); harmless to declare alongside other modes — it marks
  /// the app mergeable-*capable* for deployments that override the mode.
  MergeFn merge = nullptr;
  /// Monotone measure paired with `merge` (merge_convergence oracle).
  MeasureFn measure = nullptr;
  /// kReplicatedRead: max age of the local replica a read may observe.
  /// 0 = kDefaultStalenessBound.
  SimDuration staleness_bound = 0;
  /// kMergeable: period between merge-delta pushes. 0 = default.
  SimDuration merge_interval = 0;
};

/// Typed access helpers for POD state blobs.
template <typename T>
std::optional<T> StateAs(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (bytes.size() < sizeof(T)) return std::nullopt;
  T value;
  std::memcpy(&value, bytes.data(), sizeof(T));
  return value;
}

template <typename T>
void SetState(std::vector<std::byte>& bytes, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  bytes.resize(sizeof(T));
  std::memcpy(bytes.data(), &value, sizeof(T));
}

/// Environment handed to the app for one packet.
struct AppContext {
  SimTime now = 0;
  /// The processing switch's protocol address (for diagnostics).
  net::Ipv4Addr switch_ip;
};

/// Output of processing one packet.
struct ProcessResult {
  /// Packets to emit (normally the translated/forwarded input).  Empty
  /// means drop.
  std::vector<net::Packet> outputs;
  /// True if the per-partition state changed (triggers replication in
  /// linearizable mode).
  bool state_modified = false;
};

class SwitchApp {
 public:
  virtual ~SwitchApp() = default;

  virtual std::string_view name() const = 0;

  /// The partition key governing this packet's state, or nullopt if the
  /// packet does not touch application state (it is then plain-forwarded).
  /// Default: the IP 5-tuple.
  virtual std::optional<net::PartitionKey> KeyOf(const net::Packet& pkt) const;

  /// The app's declared consistency traits (see StateTraits).  Default:
  /// single-owner, the paper's base protocol.
  virtual StateTraits Traits() const { return {}; }

  /// The transition function.  `state` is this partition's current state
  /// (empty for a flow with no state yet); mutate it and set
  /// `state_modified` to record a write.
  virtual ProcessResult Process(AppContext& ctx, net::Packet pkt,
                                std::vector<std::byte>& state) = 0;

  /// True when per-flow state lives in a match table, which on Tofino-class
  /// hardware is only writable via the switch control plane; state installs
  /// then pay the PCIe/CPU latency (§5.1.2).  Register-backed state installs
  /// directly in the data plane.
  virtual bool StateInMatchTable() const { return false; }

  /// Clears any app-internal volatile structures (switch failure).  Apps
  /// whose entire state lives in the harness-managed per-flow blobs need not
  /// override.
  virtual void Reset() {}
};

}  // namespace redplane::core
