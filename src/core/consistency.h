// The consistency-mode spectrum (DESIGN.md §14).
//
// RedPlane's base protocol serializes every flow through one owner switch
// behind a lease.  That is the strongest point on a spectrum the paper
// itself opens in §4.4 (bounded-inconsistency snapshots): many in-switch
// applications tolerate weaker guarantees in exchange for latency.  This
// header names the spectrum and factors the per-mode decisions out of
// `RedPlaneSwitch` into a small strategy object:
//
//   * kSingleOwner    — today's protocol, unchanged: lease-serialized
//                       ownership, per-write sync replication, reads
//                       buffered behind in-flight writes.  Selecting it
//                       explicitly is bit-identical to the default path
//                       (pinned by an A/B test in tests/consistency_test).
//   * kReplicatedRead — writes stay lease-serialized, but reads that would
//                       otherwise loop through the network buffer are
//                       answered from local state as long as the local
//                       replica's staleness (age of the oldest un-acked
//                       write) is within the app's declared bound.  This is
//                       ε-serializability: the `bounded_staleness` monitor
//                       and modelcheck oracle enforce the bound live.
//   * kMergeable      — multi-writer: no lease at all.  Every switch admits
//                       the flow locally, applies writes at zero RTT, and
//                       periodically ships its full local state to the
//                       store as a merge delta.  The store joins deltas
//                       with the app's declared merge function.  Merges
//                       must be commutative, associative, and idempotent
//                       (join-semilattice), which makes retransmission and
//                       replay after failover safe by construction; the
//                       `merge_convergence` monitor checks a declared
//                       monotone measure never decreases at the store.
//
// Apps declare their point on the spectrum (plus merge/measure functions
// where applicable) via `StateTraits` in core/app.h; deployments may pin a
// different mode through `RedPlaneConfig::mode_override`.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"

namespace redplane::core {

enum class ConsistencyMode : std::uint8_t {
  kSingleOwner = 0,
  kReplicatedRead = 1,
  kMergeable = 2,
};

/// Number of modes; wire decoding rejects mode bytes >= this.
constexpr std::uint8_t kNumConsistencyModes = 3;

const char* ConsistencyModeName(ConsistencyMode mode);

/// Joins `delta` into `into`.  Must be commutative, associative, and
/// idempotent over the app's state encoding (property-tested per app in
/// tests/property_test.cc).
using MergeFn = void (*)(std::vector<std::byte>& into,
                         std::span<const std::byte> delta);

/// A monotone measure of a state blob: merging may only grow it (join
/// dominance).  The store emits it on every applied merge so the
/// merge_convergence monitor can check convergence online without
/// understanding the state encoding.
using MeasureFn = double (*)(std::span<const std::byte> state);

/// --- reusable join-semilattice merges -------------------------------------
/// All three are joins (max / bitwise-or), not sums: a join is idempotent,
/// so a delta applied twice — retransmission, replay after failover — is a
/// no-op, which is exactly what makes the mergeable mode safe without the
/// per-flow sequence filter.  Max is also lossless for per-flow counters in
/// this protocol: a flow traverses one switch at a time, so each switch's
/// local count is a prefix of the true count and the max over switches is
/// the true value.

/// u64 little-endian max.  Shorter operand is treated as zero-extended.
void MergeMaxU64(std::vector<std::byte>& into, std::span<const std::byte> delta);

/// Lane-wise max over an array of little-endian u32 lanes (count-min sketch
/// rows, heavy-hitter tables).  `into` grows to the longer operand.
void MergeMaxU32Lanes(std::vector<std::byte>& into,
                      std::span<const std::byte> delta);

/// Bytewise bitwise-or (bloom filters, spreader bitmaps).
void MergeOrBytes(std::vector<std::byte>& into, std::span<const std::byte> delta);

/// Monotone measures paired with the merges above.
double MeasureU64(std::span<const std::byte> state);
double MeasureSumU32Lanes(std::span<const std::byte> state);
double MeasurePopcount(std::span<const std::byte> state);

struct StateTraits;  // core/app.h

/// Per-mode protocol decisions, consulted by RedPlaneSwitch.  The single-
/// owner implementation answers every question exactly as the pre-refactor
/// hard-wired code did, so selecting it changes nothing (A/B-pinned).
class ConsistencyPolicy {
 public:
  virtual ~ConsistencyPolicy() = default;

  virtual ConsistencyMode mode() const = 0;

  /// Does flow admission require a store-granted lease?  False only for
  /// mergeable mode, where every switch admits locally.
  virtual bool LeaseRequired() const { return true; }

  /// May a read be answered from local state that is `staleness` behind the
  /// durable store view (oldest un-acked write age)?  Only replicated-read
  /// answers yes, and only within the declared bound.
  virtual bool AllowLocalRead(SimDuration staleness) const {
    (void)staleness;
    return false;
  }

  /// Staleness bound local reads must respect (0 = mode never reads
  /// locally against a bound).
  virtual SimDuration staleness_bound() const { return 0; }

  /// Interval between merge-delta pushes to the store (mergeable only).
  virtual SimDuration merge_interval() const { return 0; }

  /// Joins `delta` into `into` (mergeable only; no-op overwrite otherwise).
  virtual void Merge(std::vector<std::byte>& into,
                     std::span<const std::byte> delta) const;

  /// Monotone measure of `state` (mergeable only; 0 otherwise).
  virtual double Measure(std::span<const std::byte> state) const {
    (void)state;
    return 0.0;
  }

  /// Builds the policy for `traits`.  A mergeable declaration without a
  /// merge function is invalid and falls back to single-owner (warned).
  static std::unique_ptr<ConsistencyPolicy> Make(const StateTraits& traits);
};

}  // namespace redplane::core
