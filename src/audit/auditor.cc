#include "audit/auditor.h"

#include <utility>

#include "audit/monitors.h"
#include "common/logging.h"
#include "obs/profiler.h"

namespace redplane::audit {

namespace {
// Stride > 1: Publish fires on every tapped protocol step when armed, and a
// sampled scope is enough to attribute monitor cost without inflating it.
obs::ProfSite g_prof_publish("audit.publish", /*stride=*/16);
}  // namespace

Auditor::Auditor() {
  events_counter_ = stats_.RegisterCounter("events");
  violations_counter_ = stats_.RegisterCounter("violations");
}

Auditor::~Auditor() {
  if (internal::g_auditor == this) SetGlobalAuditor(nullptr);
}

void Auditor::SetEnabled(bool enabled) {
  enabled_ = enabled;
  if (internal::g_auditor == this) internal::g_armed = enabled_;
}

void Auditor::ArmStandardMonitors() {
  AddMonitor(std::make_unique<SingleOwnerMonitor>());
  AddMonitor(std::make_unique<SeqMonotonicMonitor>());
  AddMonitor(std::make_unique<ChainCommitMonitor>());
  AddMonitor(std::make_unique<EpsilonBoundMonitor>());
  AddMonitor(std::make_unique<BoundedStalenessMonitor>());
  AddMonitor(std::make_unique<MergeConvergenceMonitor>());
}

void Auditor::AddMonitor(std::unique_ptr<Monitor> monitor) {
  monitors_.push_back(std::move(monitor));
}

Monitor* Auditor::FindMonitor(std::string_view name) {
  for (auto& m : monitors_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

std::uint16_t Auditor::Intern(std::string_view name) {
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] == name) return static_cast<std::uint16_t>(i);
  }
  components_.emplace_back(name);
  return static_cast<std::uint16_t>(components_.size() - 1);
}

const std::string& Auditor::ComponentName(std::uint16_t id) const {
  static const std::string kUnknown = "?";
  return id < components_.size() ? components_[id] : kUnknown;
}

void Auditor::Publish(std::uint16_t component, Tap tap, std::uint64_t key,
                      std::uint64_t seq, std::uint64_t aux, double value) {
  if (!enabled_) return;
  obs::ProfScope prof(g_prof_publish);
  TapEvent ev;
  ev.t = NowOrZero();
  ev.tap = tap;
  ev.component = component;
  ev.key = key;
  ev.seq = seq;
  ev.aux = aux;
  ev.value = value;
  ++events_seen_;
  events_counter_.Add();
  if (tap_observer_) tap_observer_(ev);
  for (auto& m : monitors_) m->OnEvent(*this, ev);
}

void Auditor::ReportViolation(std::string_view monitor, const TapEvent& at,
                              std::string detail) {
  ++violations_total_;
  violations_counter_.Add();
  ++counts_by_monitor_[std::string(monitor)];
  stats_.Add(std::string("violations.") + std::string(monitor));
  RP_LOG(kError) << "AUDIT VIOLATION [" << monitor << "] at t=" << at.t
                 << "ns component=" << ComponentName(at.component)
                 << " key=0x" << std::hex << at.key << std::dec
                 << " seq=" << at.seq << ": " << detail;
  if (violations_.size() >= kMaxStoredViolations) return;
  Violation v;
  v.monitor = std::string(monitor);
  v.detail = std::move(detail);
  v.at = at;
  if (tracer_ != nullptr) v.slice = ExtractSlice(*tracer_, at.key, at.t);
  violations_.push_back(std::move(v));
}

std::size_t Auditor::ViolationCount(std::string_view monitor) const {
  const auto it = counts_by_monitor_.find(monitor);
  return it == counts_by_monitor_.end() ? 0 : it->second;
}

void Auditor::ClearFindings() {
  violations_.clear();
  violations_total_ = 0;
  counts_by_monitor_.clear();
  events_seen_ = 0;
  stats_.Reset();
  for (auto& m : monitors_) m->Reset();
}

}  // namespace redplane::audit
