// Causal trace slices: the flight-recorder half of the auditor.
//
// When a monitor reports a violation the auditor cuts a *causal slice* out
// of the global tracer ring: the smallest happens-before-closed window of
// trace events that explains the violation.  The happens-before relation
// used here is deliberately restricted to what the tracer can witness:
//
//   1. program order within the violating flow (every event on the flow's
//      key, ordered by emission index),
//   2. protocol begin→end span edges (obs::ProtocolPairs — a span's end
//      depends on its begin), and
//   3. environment events (node/link failures and recoveries, reroutes;
//      flow == 0) that overlap the window in time — faults are global
//      causes, so any fault inside the window may explain the violation.
//
// Extraction walks backwards from the violation time, pulls in span begins
// required by rule 2 until a fixpoint, then — if over budget — drops the
// oldest events *with their dependants* (cascade drop keeps the result
// HB-closed even when truncated).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/tracer.h"

namespace redplane::audit {

/// Default event budget for a slice (acceptance: slices are ≤ 100 events).
inline constexpr std::size_t kMaxSliceEvents = 100;

/// A happens-before-closed window of tracer events around a violation.
struct CausalSlice {
  std::uint64_t flow = 0;  // hashed key the violation is about (0 = none)
  SimTime at = 0;          // violation time; slice covers events with t <= at
  bool truncated = false;  // true when the event budget forced cascade drops
  std::vector<obs::TraceRecord> events;  // emission order (oldest first)
  std::vector<std::string> components;   // component-id → name, for export

  bool empty() const { return events.empty(); }

  /// Perfetto / chrome://tracing loadable JSON for just this slice.
  std::string PerfettoJson() const;
  /// Human-readable one-event-per-line rendering.
  void WriteText(std::ostream& os) const;
  std::string Text() const;
};

/// Cuts a causal slice for `flow` ending at time `at` out of `tracer`'s
/// current ring contents.  Returns an empty slice when the tracer holds no
/// matching events (e.g. tracing disabled).
CausalSlice ExtractSlice(const obs::Tracer& tracer, std::uint64_t flow,
                         SimTime at, std::size_t max_events = kMaxSliceEvents);

/// True when every end-of-span event in `slice` is preceded (in the slice)
/// by a matching begin — the closure property ExtractSlice guarantees.
/// Exposed so tests can assert it on real violations.
bool IsHappensBeforeClosed(const CausalSlice& slice);

}  // namespace redplane::audit
