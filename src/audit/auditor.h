// Online protocol auditor: checks RedPlane's safety invariants live.
//
// The auditor receives TapEvents from instrumented components (see
// audit/taps.h), stamps them with the simulation clock, and dispatches them
// synchronously to a set of invariant monitors — the runtime-verification
// counterparts of the properties src/modelcheck explores offline:
//
//   single_owner   no two switches hold a live lease on the same key
//   seq_monotonic  a replica never re-applies a seq its filter passed
//   chain_commit   no output released before the tail committed its write
//   epsilon_bound  observed snapshot staleness stays within configured ε
//
// plus a LinearizabilityFeed (audit/lin_feed.h) that runs the modelcheck
// linearizability checker on each flow's live history at flow close.
//
// On violation the auditor cuts a causal slice from the global tracer
// (audit/slice.h): the happens-before-closed window of trace events that
// explains the violation, exportable as Perfetto JSON or text.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "audit/slice.h"
#include "audit/taps.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace redplane::audit {

/// One confirmed invariant violation.
struct Violation {
  std::string monitor;  // monitor name ("single_owner", ...)
  std::string detail;   // human-readable explanation
  TapEvent at;          // the event that completed the violation
  CausalSlice slice;    // flight-recorder window (empty when no tracer)
};

/// Base class for invariant monitors.  Monitors are single-threaded state
/// machines fed every published TapEvent in order; they call
/// Auditor::ReportViolation when an invariant breaks.
class Monitor {
 public:
  explicit Monitor(std::string name) : name_(std::move(name)) {}
  virtual ~Monitor() = default;
  const std::string& name() const { return name_; }

  virtual void OnEvent(Auditor& auditor, const TapEvent& ev) = 0;
  /// Drops accumulated state (between campaign runs).
  virtual void Reset() {}

 private:
  std::string name_;
};

class Auditor {
 public:
  Auditor();
  ~Auditor();

  Auditor(const Auditor&) = delete;
  Auditor& operator=(const Auditor&) = delete;

  // --- configuration ---
  void SetClock(std::function<SimTime()> clock) { clock_ = std::move(clock); }
  void SetEnabled(bool enabled);
  bool enabled() const { return enabled_; }
  /// Tracer to cut causal slices from on violation (optional).
  void SetTracer(const obs::Tracer* tracer) { tracer_ = tracer; }
  /// Raw tap-stream observer, called with every published event before the
  /// monitors run.  This is how passive consumers that must not depend on
  /// the audit library's monitors (e.g. obs::RecoveryTracker) subscribe to
  /// the fact stream; pass an empty function to detach.
  void SetTapObserver(std::function<void(const TapEvent&)> observer) {
    tap_observer_ = std::move(observer);
  }

  /// Installs the four standard protocol monitors (see audit/monitors.h).
  void ArmStandardMonitors();
  void AddMonitor(std::unique_ptr<Monitor> monitor);
  Monitor* FindMonitor(std::string_view name);
  std::size_t NumMonitors() const { return monitors_.size(); }

  // --- component interning (mirrors obs::Tracer) ---
  std::uint16_t Intern(std::string_view name);
  const std::string& ComponentName(std::uint16_t id) const;
  std::uint64_t generation() const { return generation_; }

  // --- event intake (called by TapHandle::Emit) ---
  void Publish(std::uint16_t component, Tap tap, std::uint64_t key,
               std::uint64_t seq = 0, std::uint64_t aux = 0,
               double value = 0.0);

  // --- violation reporting (called by monitors) ---
  void ReportViolation(std::string_view monitor, const TapEvent& at,
                       std::string detail);

  // --- findings ---
  const std::vector<Violation>& violations() const { return violations_; }
  std::uint64_t events_seen() const { return events_seen_; }
  /// Violations attributed to one monitor (by name).
  std::size_t ViolationCount(std::string_view monitor) const;
  /// Drops violations and monitor state; keeps configuration and monitors.
  void ClearFindings();

  obs::MetricRegistry& stats() { return stats_; }
  const obs::MetricRegistry& stats() const { return stats_; }

  /// Cap on stored violations (a broken invariant usually fires per packet;
  /// keep the first occurrences, count the rest).
  static constexpr std::size_t kMaxStoredViolations = 64;

 private:
  SimTime NowOrZero() const { return clock_ ? clock_() : 0; }

  bool enabled_ = false;
  std::function<SimTime()> clock_;
  const obs::Tracer* tracer_ = nullptr;
  std::function<void(const TapEvent&)> tap_observer_;
  std::vector<std::unique_ptr<Monitor>> monitors_;
  std::vector<std::string> components_;
  std::uint64_t generation_ = 1;
  std::uint64_t events_seen_ = 0;
  std::vector<Violation> violations_;
  std::uint64_t violations_total_ = 0;
  /// Per-monitor totals; unlike `violations_` these are not capped.
  std::map<std::string, std::size_t, std::less<>> counts_by_monitor_;
  obs::MetricRegistry stats_{"audit"};
  obs::Counter events_counter_;
  obs::Counter violations_counter_;
};

}  // namespace redplane::audit
