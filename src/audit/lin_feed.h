// LinearizabilityFeed: streams live per-flow histories into the modelcheck
// linearizability checker.
//
// src/modelcheck checks counter linearizability post-hoc on histories built
// by hand; the feed builds them *during* a simulated run — harness code
// records each input packet as it is injected and each output (with its
// counter value) as it leaves the system — and runs the exact checker when
// a flow closes.  A failed check is reported through the auditor like any
// other monitor violation, with a causal slice cut at the flow's last
// event.
#pragma once

#include <cstdint>
#include <map>

#include "audit/auditor.h"
#include "common/types.h"
#include "modelcheck/linearizability.h"

namespace redplane::audit {

class LinearizabilityFeed {
 public:
  /// `auditor` receives violations; may be null (check results are still
  /// returned from CloseFlow).
  explicit LinearizabilityFeed(Auditor* auditor = nullptr)
      : auditor_(auditor) {}

  void Input(std::uint64_t flow, std::uint64_t packet_id, SimTime t);
  void Output(std::uint64_t flow, std::uint64_t packet_id, SimTime t,
              std::uint64_t value);

  /// Runs the counter-linearizability checker on the flow's history and
  /// drops it.  Returns true when linearizable (or the flow was unknown).
  bool CloseFlow(std::uint64_t flow);
  /// Closes every open flow (deterministic order); returns the number of
  /// flows that failed the check.
  std::size_t CloseAll();

  std::size_t OpenFlows() const { return flows_.size(); }

 private:
  struct FlowHistory {
    modelcheck::HistoryRecorder recorder;
    SimTime last_t = 0;
  };

  Auditor* auditor_;
  std::map<std::uint64_t, FlowHistory> flows_;  // ordered → deterministic
};

}  // namespace redplane::audit
