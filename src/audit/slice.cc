#include "audit/slice.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/events.h"

namespace redplane::audit {

namespace {

using obs::Ev;
using obs::TraceRecord;

/// Environment events that act as global causes: any of these inside the
/// slice window may explain a violation on any flow.
bool IsInfraEvent(const TraceRecord& r) {
  if (r.flow != 0) return false;
  switch (r.ev) {
    case Ev::kNodeFailure:
    case Ev::kNodeRecovery:
    case Ev::kLinkDown:
    case Ev::kLinkUp:
    case Ev::kReroute:
      return true;
    default:
      return false;
  }
}

/// Span-pairing key: matched on (flow, seq) or flow alone per the pairing.
std::uint64_t PairKey(const TraceRecord& r, bool seq_matched) {
  return seq_matched ? r.flow ^ (r.seq * 0x9e3779b97f4a7c15ull) : r.flow;
}

}  // namespace

CausalSlice ExtractSlice(const obs::Tracer& tracer, std::uint64_t flow,
                         SimTime at, std::size_t max_events) {
  CausalSlice slice;
  slice.flow = flow;
  slice.at = at;

  const std::vector<TraceRecord> all = tracer.Records();
  const auto pairs = obs::ProtocolPairs();

  // Rule 1: program order on the violating flow, up to the violation time.
  // Keep only the most recent `max_events` as the seed window; closure and
  // infra merging below may still push us over budget (handled by cascade
  // drop at the end).
  std::vector<std::size_t> selected;  // indices into `all`, ascending
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i].flow == flow && flow != 0 && all[i].t <= at) selected.push_back(i);
  }
  if (selected.size() > max_events) {
    slice.truncated = true;  // program-order prefix dropped to fit the budget
    selected.erase(selected.begin(),
                   selected.end() - static_cast<std::ptrdiff_t>(max_events));
  }

  std::unordered_set<std::size_t> in_slice(selected.begin(), selected.end());

  // Rule 2: happens-before closure over protocol span edges.  For every
  // end-of-span event in the slice, pull in the latest matching begin that
  // precedes it.  Newly added begins can themselves be span ends (phases
  // chain: kStoreRecv ends switch_to_store and begins store_apply), so
  // iterate to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::size_t> current(in_slice.begin(), in_slice.end());
    for (std::size_t idx : current) {
      const TraceRecord& end_rec = all[idx];
      for (const auto& p : pairs) {
        if (end_rec.ev != p.end) continue;
        const std::uint64_t want = PairKey(end_rec, p.seq_matched);
        // Latest begin before this end with the same pairing key.
        for (std::size_t j = idx; j-- > 0;) {
          const TraceRecord& cand = all[j];
          if (cand.ev == p.begin && PairKey(cand, p.seq_matched) == want) {
            if (in_slice.insert(j).second) changed = true;
            break;
          }
        }
      }
    }
  }

  // Rule 3: merge overlapping environment events.  Window starts at the
  // oldest flow/closure event already selected (or `at` when none).
  SimTime window_start = at;
  for (std::size_t idx : in_slice) window_start = std::min(window_start, all[idx].t);
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (IsInfraEvent(all[i]) && all[i].t >= window_start && all[i].t <= at) {
      in_slice.insert(i);
    }
  }

  std::vector<std::size_t> ordered(in_slice.begin(), in_slice.end());
  std::sort(ordered.begin(), ordered.end());

  // Cascade drop: while over budget, drop the oldest event — and, if it is
  // a span begin, every end in the slice that pairs with it, so the result
  // stays happens-before closed.
  while (ordered.size() > max_events) {
    slice.truncated = true;
    const TraceRecord& victim = all[ordered.front()];
    ordered.erase(ordered.begin());
    for (const auto& p : pairs) {
      if (victim.ev != p.begin) continue;
      const std::uint64_t key = PairKey(victim, p.seq_matched);
      // Drop ends pairing with the victim *unless* a later begin (still in
      // the slice, before the end) re-satisfies them.
      for (auto it = ordered.begin(); it != ordered.end();) {
        const TraceRecord& r = all[*it];
        bool drop = false;
        if (r.ev == p.end && PairKey(r, p.seq_matched) == key) {
          drop = true;
          for (std::size_t other : ordered) {
            if (other >= *it) break;
            const TraceRecord& b = all[other];
            if (b.ev == p.begin && PairKey(b, p.seq_matched) == key) {
              drop = false;
              break;
            }
          }
        }
        it = drop ? ordered.erase(it) : ++it;
      }
    }
  }

  // Materialise: remap component ids into a slice-local compact table so the
  // slice stays self-contained after the tracer is cleared or re-interned.
  std::unordered_map<std::uint16_t, std::uint16_t> remap;
  for (std::size_t idx : ordered) {
    TraceRecord r = all[idx];
    auto [it, inserted] =
        remap.emplace(r.component, static_cast<std::uint16_t>(slice.components.size()));
    if (inserted) slice.components.push_back(tracer.ComponentName(r.component));
    r.component = it->second;
    slice.events.push_back(r);
  }
  return slice;
}

bool IsHappensBeforeClosed(const CausalSlice& slice) {
  const auto pairs = obs::ProtocolPairs();
  for (std::size_t i = 0; i < slice.events.size(); ++i) {
    const TraceRecord& r = slice.events[i];
    for (const auto& p : pairs) {
      if (r.ev != p.end) continue;
      // Seq-0 records of end-event kinds are control messages (lease
      // acquire / renew); they have no begin partner by design.
      if (p.seq_matched && r.seq == 0) continue;
      // An end with no begin anywhere in the underlying history is not a
      // closure failure — there is nothing to pull in.  ExtractSlice marks
      // nothing, so approximate "had a begin" by requiring one in-slice
      // whenever any same-kind begin event appears earlier in the slice's
      // flow; the strict check: find a matching begin before i.
      const std::uint64_t want = PairKey(r, p.seq_matched);
      bool satisfied = false;
      bool begin_kind_seen = false;
      for (std::size_t j = 0; j < i; ++j) {
        const TraceRecord& b = slice.events[j];
        if (b.ev != p.begin) continue;
        begin_kind_seen = true;
        if (PairKey(b, p.seq_matched) == want) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied && begin_kind_seen) return false;
    }
  }
  return true;
}

std::string CausalSlice::PerfettoJson() const {
  std::ostringstream os;
  obs::WriteChromeTraceRecords(os, events, components);
  return os.str();
}

void CausalSlice::WriteText(std::ostream& os) const {
  os << "causal slice: flow=0x" << std::hex << flow << std::dec << " at=" << at
     << "ns events=" << events.size()
     << (truncated ? " (truncated to budget)" : "") << "\n";
  for (const auto& r : events) {
    const std::string& comp =
        r.component < components.size() ? components[r.component] : "?";
    os << "  t=" << r.t << "ns  " << comp << "  " << obs::EvName(r.ev)
       << "  flow=0x" << std::hex << r.flow << std::dec << " seq=" << r.seq;
    if (r.arg != 0.0) os << " arg=" << r.arg;
    if (r.orphan) os << " [orphan-end]";
    os << "\n";
  }
}

std::string CausalSlice::Text() const {
  std::ostringstream os;
  WriteText(os);
  return os.str();
}

}  // namespace redplane::audit
