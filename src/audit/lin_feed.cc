#include "audit/lin_feed.h"

#include <algorithm>
#include <string>
#include <vector>

namespace redplane::audit {

void LinearizabilityFeed::Input(std::uint64_t flow, std::uint64_t packet_id,
                                SimTime t) {
  auto& fh = flows_[flow];
  fh.recorder.Input(packet_id, t);
  fh.last_t = std::max(fh.last_t, t);
}

void LinearizabilityFeed::Output(std::uint64_t flow, std::uint64_t packet_id,
                                 SimTime t, std::uint64_t value) {
  auto& fh = flows_[flow];
  fh.recorder.Output(packet_id, t, value);
  fh.last_t = std::max(fh.last_t, t);
}

bool LinearizabilityFeed::CloseFlow(std::uint64_t flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return true;
  FlowHistory fh = std::move(it->second);
  flows_.erase(it);

  std::string why;
  const bool ok =
      modelcheck::CheckCounterLinearizable(fh.recorder.Sorted(), &why);
  if (!ok && auditor_ != nullptr) {
    TapEvent at;
    at.t = fh.last_t;
    at.tap = Tap::kHistoryClosed;
    at.component = auditor_->Intern("lin_feed");
    at.key = flow;
    at.seq = fh.recorder.NumInputs();
    auditor_->ReportViolation("linearizability", at, why);
  }
  return ok;
}

std::size_t LinearizabilityFeed::CloseAll() {
  std::vector<std::uint64_t> keys;
  keys.reserve(flows_.size());
  for (const auto& [flow, fh] : flows_) keys.push_back(flow);
  std::size_t failures = 0;
  for (std::uint64_t flow : keys) {
    if (!CloseFlow(flow)) ++failures;
  }
  return failures;
}

}  // namespace redplane::audit
