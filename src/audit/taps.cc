#include "audit/taps.h"

#include "audit/auditor.h"

namespace redplane::audit {

namespace internal {
Auditor* g_auditor = nullptr;
bool g_armed = false;
}  // namespace internal

const char* TapName(Tap tap) {
  switch (tap) {
    case Tap::kLeaseAcquired: return "lease_acquired";
    case Tap::kLeaseReleased: return "lease_released";
    case Tap::kAckReleased: return "ack_released";
    case Tap::kEpsilonSample: return "epsilon_sample";
    case Tap::kStoreApplied: return "store_applied";
    case Tap::kStoreFiltered: return "store_filtered";
    case Tap::kDupAckDurable: return "dup_ack_durable";
    case Tap::kTailCommit: return "tail_commit";
    case Tap::kStoreReset: return "store_reset";
    case Tap::kChainReconfig: return "chain_reconfig";
    case Tap::kResyncCommit: return "resync_commit";
    case Tap::kNodeDown: return "node_down";
    case Tap::kNodeUp: return "node_up";
    case Tap::kLinkCut: return "link_cut";
    case Tap::kLinkRestored: return "link_restored";
    case Tap::kHistoryClosed: return "history_closed";
    case Tap::kRouteReconverged: return "route_reconverged";
    case Tap::kLeaseRequested: return "lease_requested";
    case Tap::kLeaseGranted: return "lease_granted";
    case Tap::kOutputServed: return "output_served";
    case Tap::kFlowAdmitted: return "flow_admitted";
    case Tap::kLocalReadServed: return "local_read_served";
    case Tap::kMergeEmitted: return "merge_emitted";
    case Tap::kMergeApplied: return "merge_applied";
    case Tap::kReplicaPushed: return "replica_pushed";
    case Tap::kGrayFault: return "gray_fault";
    case Tap::kGrayCleared: return "gray_cleared";
  }
  return "?";
}

Auditor* SetGlobalAuditor(Auditor* auditor) {
  Auditor* prev = internal::g_auditor;
  internal::g_auditor = auditor;
  internal::g_armed = auditor != nullptr && auditor->enabled();
  return prev;
}

void TapHandle::Emit(Tap tap, std::uint64_t key, std::uint64_t seq,
                     std::uint64_t aux, double value) const {
  Auditor* a = internal::g_auditor;
  if (a == nullptr || !a->enabled()) return;
  if (cached_auditor_ != a || cached_generation_ != a->generation()) {
    cached_auditor_ = a;
    cached_generation_ = a->generation();
    cached_id_ = a->Intern(name_.empty() ? std::string_view("?") : name_);
  }
  a->Publish(cached_id_, tap, key, seq, aux, value);
}

}  // namespace redplane::audit
