// Failure diagnostics: one call dumps everything needed to debug a red CI
// run without a rerun.
//
// Components register a dump callback (their lease table, flow records,
// ...) through a RAII DiagToken; DumpDiagnostics() renders every registered
// dump plus the tail of the global tracer ring and any auditor violations.
// The gtest listener in tests/audit_diag.h calls it on test failure.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace redplane::audit {

/// Process-global registry of diagnostic dump callbacks.
class DiagRegistry {
 public:
  static DiagRegistry& Instance();

  /// Registers `fn` under `title`; returns an id for Unregister.
  std::uint64_t Register(std::string title,
                         std::function<void(std::ostream&)> fn);
  void Unregister(std::uint64_t id);

  /// Renders every registered dump, in registration order.
  void DumpAll(std::ostream& os) const;
  std::size_t Size() const;

 private:
  DiagRegistry() = default;
  struct Entry {
    std::uint64_t id;
    std::string title;
    std::function<void(std::ostream&)> fn;
  };
  std::uint64_t next_id_ = 1;
  std::vector<Entry> entries_;
};

/// Move-only RAII registration handle.  Destroying (or moving-from) the
/// token unregisters the callback, so components can register dumps bound
/// to `this` safely.
class DiagToken {
 public:
  DiagToken() = default;
  DiagToken(std::string title, std::function<void(std::ostream&)> fn)
      : id_(DiagRegistry::Instance().Register(std::move(title), std::move(fn))) {}
  ~DiagToken() { release(); }

  DiagToken(const DiagToken&) = delete;
  DiagToken& operator=(const DiagToken&) = delete;
  DiagToken(DiagToken&& other) noexcept : id_(other.id_) { other.id_ = 0; }
  DiagToken& operator=(DiagToken&& other) noexcept {
    if (this != &other) {
      release();
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }

 private:
  void release() {
    if (id_ != 0) DiagRegistry::Instance().Unregister(id_);
    id_ = 0;
  }
  std::uint64_t id_ = 0;
};

/// Dumps, to `os`: the last `last_n` events of the global tracer ring (when
/// one is installed), every DiagRegistry dump (lease tables, flow records),
/// and any violations held by the global auditor.
void DumpDiagnostics(std::ostream& os, std::size_t last_n = 64);

}  // namespace redplane::audit
