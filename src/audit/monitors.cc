#include "audit/monitors.h"

#include <algorithm>
#include <sstream>

#include "common/hash.h"
// Header-only use (the ConsistencyMode enum); audit does not link core.
#include "core/consistency.h"

namespace redplane::audit {

void SingleOwnerMonitor::OnEvent(Auditor& auditor, const TapEvent& ev) {
  switch (ev.tap) {
    case Tap::kFlowAdmitted: {
      // Per-mode subscription: a flow admitted under a weaker mode is
      // exempt from the single-owner invariant for good (modes are an app
      // property, so a key never changes mode mid-run).
      if (ev.aux != static_cast<std::uint64_t>(
                        core::ConsistencyMode::kSingleOwner)) {
        exempt_[ev.key] = true;
        holders_.erase(ev.key);
      }
      break;
    }
    case Tap::kLeaseAcquired: {
      if (exempt_.count(ev.key) != 0) break;
      auto& holders = holders_[ev.key];
      // Prune claims whose believed expiry has certainly passed.  Switch
      // beliefs are conservative (send-time based), so the store never
      // grants a new lease before an old claim's believed expiry.
      holders.erase(std::remove_if(holders.begin(), holders.end(),
                                   [&](const Holder& h) {
                                     return h.expiry <= ev.t &&
                                            h.component != ev.component;
                                   }),
                    holders.end());
      const auto expiry = static_cast<SimTime>(ev.aux);
      bool updated = false;
      for (auto& h : holders) {
        if (h.component == ev.component) {
          h.expiry = std::max(h.expiry, expiry);
          updated = true;
        } else if (h.expiry > ev.t) {
          std::ostringstream why;
          why << "two live lease claims on key 0x" << std::hex << ev.key
              << std::dec << ": " << auditor.ComponentName(h.component)
              << " (believes expiry t=" << h.expiry << "ns) and "
              << auditor.ComponentName(ev.component)
              << " (acquired at t=" << ev.t << "ns, expiry t=" << expiry
              << "ns)";
          auditor.ReportViolation(name(), ev, why.str());
        }
      }
      if (!updated) holders.push_back({ev.component, expiry});
      break;
    }
    case Tap::kLeaseReleased: {
      if (ev.key == 0) {
        // Component dropped its whole flow table (reset / fail-stop).
        for (auto& [key, holders] : holders_) {
          holders.erase(std::remove_if(holders.begin(), holders.end(),
                                       [&](const Holder& h) {
                                         return h.component == ev.component;
                                       }),
                        holders.end());
        }
      } else {
        auto it = holders_.find(ev.key);
        if (it == holders_.end()) break;
        auto& holders = it->second;
        holders.erase(std::remove_if(holders.begin(), holders.end(),
                                     [&](const Holder& h) {
                                       return h.component == ev.component;
                                     }),
                      holders.end());
      }
      break;
    }
    default:
      break;
  }
}

void SeqMonotonicMonitor::OnEvent(Auditor& auditor, const TapEvent& ev) {
  switch (ev.tap) {
    case Tap::kStoreApplied: {
      const std::uint64_t slot = HashCombine(
          HashCombine(ev.key, static_cast<std::uint64_t>(ev.component)),
          epoch_[ev.component]);
      auto [it, inserted] = last_applied_.try_emplace(slot, ev.seq);
      if (!inserted) {
        if (ev.seq <= it->second) {
          std::ostringstream why;
          why << auditor.ComponentName(ev.component) << " applied seq "
              << ev.seq << " for key 0x" << std::hex << ev.key << std::dec
              << " but already applied seq " << it->second
              << " — the sequence filter regressed";
          auditor.ReportViolation(name(), ev, why.str());
        }
        it->second = std::max(it->second, ev.seq);
      }
      break;
    }
    case Tap::kStoreReset: {
      // The replica's DRAM records are gone; it will legitimately
      // re-baseline from chain resync.  Bump its epoch so all its old
      // baselines become unreachable.
      ++epoch_[ev.component];
      break;
    }
    default:
      break;
  }
}

void ChainCommitMonitor::OnEvent(Auditor& auditor, const TapEvent& ev) {
  switch (ev.tap) {
    case Tap::kTailCommit:
    case Tap::kDupAckDurable:
    case Tap::kResyncCommit: {
      auto& committed = committed_[ev.key];
      committed = std::max(committed, ev.seq);
      break;
    }
    case Tap::kAckReleased: {
      if (ev.seq == 0) break;  // reads / lease-only acks carry no write seq
      auto it = committed_.find(ev.key);
      const std::uint64_t committed = it == committed_.end() ? 0 : it->second;
      if (ev.seq > committed) {
        std::ostringstream why;
        why << auditor.ComponentName(ev.component) << " released output for "
            << "key 0x" << std::hex << ev.key << std::dec << " seq " << ev.seq
            << " but the chain tail has only committed up to seq " << committed
            << " — ack escaped before chain-wide durability";
        auditor.ReportViolation(name(), ev, why.str());
      }
      break;
    }
    default:
      break;
  }
}

void EpsilonBoundMonitor::OnEvent(Auditor& auditor, const TapEvent& ev) {
  if (ev.tap != Tap::kEpsilonSample) return;
  const double staleness_ns = ev.value;
  const double bound_ns = static_cast<double>(ev.aux);
  bool& latched = in_violation_[ev.key];
  if (staleness_ns > bound_ns && bound_ns > 0.0) {
    if (!latched) {
      latched = true;
      std::ostringstream why;
      why << "observed staleness " << staleness_ns / 1e6 << "ms exceeds ε = "
          << bound_ns / 1e6 << "ms for key 0x" << std::hex << ev.key
          << std::dec;
      auditor.ReportViolation(name(), ev, why.str());
    }
  } else {
    latched = false;
  }
}

void BoundedStalenessMonitor::OnEvent(Auditor& auditor, const TapEvent& ev) {
  switch (ev.tap) {
    case Tap::kFlowAdmitted: {
      mode_[ev.key] = ev.aux;
      break;
    }
    case Tap::kLocalReadServed: {
      const auto it = mode_.find(ev.key);
      // Only flows admitted under replicated-read carry a staleness
      // contract; local reads of mergeable flows (or of unannounced keys)
      // are legal at any staleness.
      if (it == mode_.end() ||
          it->second != static_cast<std::uint64_t>(
                            core::ConsistencyMode::kReplicatedRead)) {
        break;
      }
      const double staleness_ns = ev.value;
      const double bound_ns = static_cast<double>(ev.aux);
      bool& latched = in_violation_[ev.key];
      if (bound_ns > 0.0 && staleness_ns > bound_ns) {
        if (!latched) {
          latched = true;
          std::ostringstream why;
          why << auditor.ComponentName(ev.component)
              << " served a local read at staleness " << staleness_ns / 1e6
              << "ms, beyond the declared bound " << bound_ns / 1e6
              << "ms for key 0x" << std::hex << ev.key << std::dec;
          auditor.ReportViolation(name(), ev, why.str());
        }
      } else {
        latched = false;
      }
      break;
    }
    default:
      break;
  }
}

void MergeConvergenceMonitor::OnEvent(Auditor& auditor, const TapEvent& ev) {
  switch (ev.tap) {
    case Tap::kMergeApplied: {
      const std::uint64_t slot = HashCombine(
          HashCombine(ev.key, static_cast<std::uint64_t>(ev.component)),
          epoch_[ev.component]);
      auto [it, inserted] = measure_.try_emplace(slot, ev.value);
      if (!inserted) {
        if (ev.value < it->second) {
          std::ostringstream why;
          why << auditor.ComponentName(ev.component)
              << " merged key 0x" << std::hex << ev.key << std::dec
              << " down the lattice: measure went " << it->second << " -> "
              << ev.value << " — the store overwrote instead of joining";
          auditor.ReportViolation(name(), ev, why.str());
        }
        it->second = std::max(it->second, ev.value);
      }
      break;
    }
    case Tap::kStoreReset: {
      ++epoch_[ev.component];
      break;
    }
    default:
      break;
  }
}

}  // namespace redplane::audit
