// Audit tap points: typed protocol facts published to the online auditor.
//
// Components publish *protocol-level claims* through a TapHandle: "this
// switch now holds a lease on key K until T", "this replica applied write
// seq S", "the tail committed seq S", "this output was released against ack
// seq S".  The auditor (src/audit/auditor.h) checks those claims against the
// paper's safety invariants while the simulation runs.
//
// Dispatch mirrors obs::TraceHandle: when no auditor is armed a tap is one
// load of a process-global flag and a predictable branch, so taps can live
// on every protocol path with no measurable cost; when armed, events
// dispatch synchronously to the registered invariant monitors.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace redplane::audit {

class Auditor;

enum class Tap : std::uint8_t {
  // --- switch side ---
  kLeaseAcquired = 0,  // lease installed or extended; aux = believed expiry
  kLeaseReleased,      // lease dropped (deny / give-up / reset); key 0 = all
  kAckReleased,        // write/read ack consumed, output released; seq = ack
  kEpsilonSample,      // observed staleness; value = ns, aux = configured ε
  // --- state store ---
  kStoreApplied,       // replica applied a write; aux = previous applied seq
  kStoreFiltered,      // stale write filtered by the sequence check
  kDupAckDurable,      // head acked a duplicate from already-durable state
  kTailCommit,         // tail answered a decided write: committed chain-wide
  kStoreReset,         // replica fail-stopped; its DRAM records are gone
  // --- chain manager ---
  kChainReconfig,      // chain membership changed; aux = new chain length
  kResyncCommit,       // resync import re-established seq as durable
  // --- failure injector ---
  kNodeDown,           // node fail-stop injected; aux = node id
  kNodeUp,             // node recovery injected; aux = node id
  kLinkCut,            // link cut injected
  kLinkRestored,       // link restore injected
  // --- auditor-internal ---
  kHistoryClosed,      // a per-flow history was closed and checked
  // --- recovery forensics (obs/recovery.h consumes these) ---
  kRouteReconverged,   // fabric routes rebuilt after a topology change;
                       //   aux = node count
  kLeaseRequested,     // switch sent a lease Init request for a key
  kLeaseGranted,       // switch received a lease grant; aux = 1 if migrate
  kOutputServed,       // an output packet was released toward its destination
  // --- consistency-mode spectrum (DESIGN.md §14) ---
  kFlowAdmitted,       // flow admitted under a non-default mode;
                       //   aux = ConsistencyMode (monitors subscribe here)
  kLocalReadServed,    // read answered from local state without store RTT;
                       //   value = staleness ns, aux = declared bound ns
                       //   (0 in mergeable mode: no bound applies)
  kMergeEmitted,       // switch pushed a merge delta; value = local measure
  kMergeApplied,       // store joined a merge delta; value = merged measure
  kReplicaPushed,      // store pushed state to a read-replica subscriber
  // --- gray failures (fuzz campaign, DESIGN.md §15) ---
  kGrayFault,          // gray failure injected (slow shard, asymmetric loss,
                       //   partial partition, capacity cap, ECMP rehash);
                       //   aux = FaultKind ordinal, value = magnitude
  kGrayCleared,        // the matching gray failure cleared
};

inline constexpr int kNumTaps = static_cast<int>(Tap::kGrayCleared) + 1;

/// Stable display name for a tap kind (used in reports).
const char* TapName(Tap tap);

/// One published protocol fact.  `key` is the pre-hashed partition key
/// (net::HashPartitionKey), sharing the id space of obs::TraceRecord::flow
/// so violations can be joined against the tracer ring.
struct TapEvent {
  SimTime t = 0;
  Tap tap = Tap::kLeaseAcquired;
  std::uint16_t component = 0;
  std::uint64_t key = 0;
  std::uint64_t seq = 0;
  std::uint64_t aux = 0;
  double value = 0.0;
};

namespace internal {
extern Auditor* g_auditor;
/// True iff g_auditor is set and enabled — the single load behind armed().
extern bool g_armed;
}  // namespace internal

/// Process-global auditor (null when none installed).  Single-threaded,
/// like the simulator and the global tracer.
inline Auditor* GlobalAuditor() { return internal::g_auditor; }

/// Installs `auditor` as the global auditor; returns the previous one.
Auditor* SetGlobalAuditor(Auditor* auditor);

/// Cached per-component tap emitter.  Copyable; re-resolves its interned
/// component id when the global auditor or its generation changes.
class TapHandle {
 public:
  TapHandle() = default;
  explicit TapHandle(std::string name) : name_(std::move(name)) {}

  void SetName(std::string name) {
    name_ = std::move(name);
    cached_auditor_ = nullptr;  // force re-intern
  }
  const std::string& name() const { return name_; }

  /// True when emitting would actually dispatch — callers guard argument
  /// computation (key hashing) behind this, exactly like TraceHandle.
  bool armed() const { return internal::g_armed; }

  /// Publishes one fact to the armed auditor (no-op when disarmed).
  void Emit(Tap tap, std::uint64_t key, std::uint64_t seq = 0,
            std::uint64_t aux = 0, double value = 0.0) const;

 private:
  std::string name_;
  mutable const Auditor* cached_auditor_ = nullptr;
  mutable std::uint64_t cached_generation_ = 0;
  mutable std::uint16_t cached_id_ = 0;
};

}  // namespace redplane::audit
