#include "audit/diag.h"

#include <algorithm>
#include <ostream>

#include "audit/auditor.h"
#include "obs/events.h"
#include "obs/tracer.h"

namespace redplane::audit {

DiagRegistry& DiagRegistry::Instance() {
  static DiagRegistry instance;
  return instance;
}

std::uint64_t DiagRegistry::Register(std::string title,
                                     std::function<void(std::ostream&)> fn) {
  const std::uint64_t id = next_id_++;
  entries_.push_back({id, std::move(title), std::move(fn)});
  return id;
}

void DiagRegistry::Unregister(std::uint64_t id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [id](const Entry& e) { return e.id == id; }),
                 entries_.end());
}

void DiagRegistry::DumpAll(std::ostream& os) const {
  for (const auto& e : entries_) {
    os << "---- " << e.title << " ----\n";
    e.fn(os);
  }
}

std::size_t DiagRegistry::Size() const { return entries_.size(); }

void DumpDiagnostics(std::ostream& os, std::size_t last_n) {
  os << "======== redplane diagnostics ========\n";

  if (const obs::Tracer* tracer = obs::GlobalTracer(); tracer != nullptr) {
    const auto records = tracer->Records();
    const std::size_t n = std::min(last_n, records.size());
    os << "---- tracer tail (" << n << " of " << records.size()
       << " ring events, " << tracer->evicted() << " evicted) ----\n";
    for (std::size_t i = records.size() - n; i < records.size(); ++i) {
      const auto& r = records[i];
      os << "  t=" << r.t << "ns  " << tracer->ComponentName(r.component)
         << "  " << obs::EvName(r.ev) << "  flow=0x" << std::hex << r.flow
         << std::dec << " seq=" << r.seq;
      if (r.arg != 0.0) os << " arg=" << r.arg;
      os << "\n";
    }
  } else {
    os << "---- no global tracer installed ----\n";
  }

  DiagRegistry::Instance().DumpAll(os);

  if (const Auditor* auditor = GlobalAuditor(); auditor != nullptr) {
    const auto& violations = auditor->violations();
    os << "---- auditor: " << violations.size() << " stored violation(s), "
       << auditor->events_seen() << " events seen ----\n";
    for (const auto& v : violations) {
      os << "[" << v.monitor << "] t=" << v.at.t << "ns: " << v.detail << "\n";
      v.slice.WriteText(os);
    }
  }
  os << "======================================\n";
}

}  // namespace redplane::audit
