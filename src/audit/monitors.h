// The standard RedPlane invariant monitors.
//
// Each monitor is a small incremental state machine over the tap-event
// stream; together they cover the safety properties of the paper's TLA+
// appendix that are observable at protocol granularity.  All of them are
// designed to stay silent across clean failover runs — the tricky part is
// not detecting broken protocols but *not* flagging legal recovery behavior
// (duplicate acks served from durable state, post-failover lease migration,
// replica resync after fail-stop).  See each monitor for the rules.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "audit/auditor.h"

namespace redplane::audit {

/// Paper §4.2: at most one switch holds a live lease on a key at any time.
///
/// Tracks, per key, the set of components claiming a lease and each one's
/// *believed expiry* (kLeaseAcquired aux).  Because the switch's belief is
/// conservative (computed from request send time), a claimed expiry in the
/// past means the claim is certainly dead and is pruned; a second live
/// claim by a different component is a violation.  kLeaseReleased drops a
/// claim (key 0 = the component dropped everything, e.g. switch reset).
///
/// Mode-aware (DESIGN.md §14): the invariant only holds for flows admitted
/// under the single-owner mode.  Flows announce a weaker mode at admission
/// via kFlowAdmitted (aux = ConsistencyMode); lease-shaped events on such
/// keys are ignored — the monitor subscribes per-mode at flow admission,
/// not globally.  Keys with no admission event default to single-owner
/// (single-owner flows emit no admission tap, keeping that path
/// bit-identical to the pre-refactor protocol).
class SingleOwnerMonitor : public Monitor {
 public:
  SingleOwnerMonitor() : Monitor("single_owner") {}
  void OnEvent(Auditor& auditor, const TapEvent& ev) override;
  void Reset() override {
    holders_.clear();
    exempt_.clear();
  }

 private:
  struct Holder {
    std::uint16_t component;
    SimTime expiry;
  };
  std::unordered_map<std::uint64_t, std::vector<Holder>> holders_;
  /// Keys admitted under a mode other than single-owner.
  std::unordered_map<std::uint64_t, bool> exempt_;
};

/// Paper §4.3: a replica's sequence filter is monotonic — once a replica
/// applied seq S for a key, it never applies S' <= S again (duplicates must
/// be answered from durable state, never re-applied).
///
/// Keyed by (component, key) so chain replicas are tracked independently.
/// kStoreReset clears a component's baselines: a fail-stopped replica lost
/// its DRAM records and legitimately re-baselines from resync.
class SeqMonotonicMonitor : public Monitor {
 public:
  SeqMonotonicMonitor() : Monitor("seq_monotonic") {}
  void OnEvent(Auditor& auditor, const TapEvent& ev) override;
  void Reset() override {
    last_applied_.clear();
    epoch_.clear();
  }

 private:
  // Baselines are keyed on hash(key, component, component-epoch); bumping a
  // component's epoch on kStoreReset makes its old baselines unreachable —
  // an O(1) "forget everything this replica knew".
  std::unordered_map<std::uint64_t, std::uint64_t> last_applied_;
  std::unordered_map<std::uint16_t, std::uint64_t> epoch_;
};

/// Paper §4.4 (chain replication): an output may be released to the
/// application only after its write is committed chain-wide — i.e. the tail
/// has processed it.
///
/// Durability evidence per key, in max-seq form, comes from three places:
/// kTailCommit (the tail answered a decided write), kDupAckDurable (the
/// head short-circuited a duplicate of an already-durable write), and
/// kResyncCommit (chain reconfiguration re-established a seq as durable on
/// a rejoining replica).  kAckReleased with seq above all known durable
/// evidence is a violation.
class ChainCommitMonitor : public Monitor {
 public:
  ChainCommitMonitor() : Monitor("chain_commit") {}
  void OnEvent(Auditor& auditor, const TapEvent& ev) override;
  void Reset() override { committed_.clear(); }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> committed_;  // key → max seq
};

/// Paper §5 (bounded-inconsistency mode): observed snapshot staleness stays
/// within the configured ε.  kEpsilonSample events carry the observed
/// staleness (value, ns) and the configured bound (aux, ns).  A per-key
/// episode latch keeps one sustained excursion from flooding the report.
class EpsilonBoundMonitor : public Monitor {
 public:
  EpsilonBoundMonitor() : Monitor("epsilon_bound") {}
  void OnEvent(Auditor& auditor, const TapEvent& ev) override;
  void Reset() override { in_violation_.clear(); }

 private:
  std::unordered_map<std::uint64_t, bool> in_violation_;  // key → latched
};

/// Replicated-read mode (DESIGN.md §14): a read answered from local state
/// must not observe staleness beyond the app's declared bound.  The switch
/// taps every locally served read (kLocalReadServed: value = staleness ns,
/// aux = bound ns); a sample over the bound is a violation — but only for
/// flows admitted under replicated-read.  Mergeable flows also serve reads
/// locally (aux = 0, and their kFlowAdmitted says kMergeable): arbitrarily
/// stale local reads are *legal* there, so the monitor ignores them.  A
/// per-key latch keeps one sustained excursion from flooding the report.
class BoundedStalenessMonitor : public Monitor {
 public:
  BoundedStalenessMonitor() : Monitor("bounded_staleness") {}
  void OnEvent(Auditor& auditor, const TapEvent& ev) override;
  void Reset() override {
    mode_.clear();
    in_violation_.clear();
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> mode_;  // key → mode
  std::unordered_map<std::uint64_t, bool> in_violation_;   // key → latched
};

/// Mergeable mode (DESIGN.md §14): the store's copy of a mergeable state
/// only moves up the join lattice.  Every applied merge taps the app's
/// declared monotone measure of the merged result (kMergeApplied, value);
/// a decrease at the same replica means the store overwrote instead of
/// merging — exactly the bug the `overwrite_instead_of_merge` mutation
/// seeds.  kStoreReset bumps the replica's epoch: a fail-stopped replica
/// lost its DRAM copy and legitimately re-baselines.
class MergeConvergenceMonitor : public Monitor {
 public:
  MergeConvergenceMonitor() : Monitor("merge_convergence") {}
  void OnEvent(Auditor& auditor, const TapEvent& ev) override;
  void Reset() override {
    measure_.clear();
    epoch_.clear();
  }

 private:
  std::unordered_map<std::uint64_t, double> measure_;  // slot → last measure
  std::unordered_map<std::uint16_t, std::uint64_t> epoch_;
};

}  // namespace redplane::audit
