// Base class for simulated network elements (switches, servers, hosts).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace redplane::sim {

class Link;

class Node {
 public:
  Node(Simulator& sim, NodeId id, std::string name);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }

  /// Delivers a packet arriving on `in_port`.  Called by Link.
  virtual void HandlePacket(net::Packet pkt, PortId in_port) = 0;

  /// Marks this node as failed/recovered.  A failed node silently drops all
  /// deliveries; subclasses may also clear volatile state on failure.
  virtual void SetUp(bool up);
  bool IsUp() const { return up_; }

  /// Registers `link` on `port` (called by Link::Connect).
  void AttachLink(PortId port, Link* link);

  /// Link attached to `port`, or nullptr.
  Link* LinkAt(PortId port) const;

  /// Number of ports with a link attached (ports are dense from 0).
  std::size_t NumPorts() const { return links_.size(); }

  /// Transmits `pkt` out of `port`.  Drops silently (with a counter) if the
  /// port has no link or the node is down.
  void SendTo(PortId port, net::Packet pkt);

  /// Per-node metric registry ("tx_pkts", "rx_pkts", "drop_no_link", ...).
  /// Typed handles for the hot-path counters are pre-registered; ad-hoc
  /// counters still work through the string API.
  obs::MetricRegistry& counters() { return metrics_; }
  const obs::MetricRegistry& counters() const { return metrics_; }

  /// Accounts a delivery into this node (called by Link on the hot path).
  void NoteRx(std::size_t wire_bytes) {
    rx_pkts_.Add();
    rx_bytes_.Add(static_cast<double>(wire_bytes));
  }

 protected:
  /// Per-node trace emitter (component name = node name).
  const obs::TraceHandle& trace() const { return trace_; }

  Simulator& sim_;

 private:
  NodeId id_;
  std::string name_;
  bool up_ = true;
  std::vector<Link*> links_;
  obs::MetricRegistry metrics_;
  obs::TraceHandle trace_;
  // Typed hot-path counters into metrics_.
  obs::Counter tx_pkts_;
  obs::Counter tx_bytes_;
  obs::Counter rx_pkts_;
  obs::Counter rx_bytes_;
  obs::Counter drop_node_down_;
  obs::Counter drop_no_link_;
};

}  // namespace redplane::sim
