// Base class for simulated network elements (switches, servers, hosts).
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace redplane::sim {

class Link;

class Node {
 public:
  Node(Simulator& sim, NodeId id, std::string name);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }

  /// Delivers a packet arriving on `in_port`.  Called by Link.
  virtual void HandlePacket(net::Packet pkt, PortId in_port) = 0;

  /// Marks this node as failed/recovered.  A failed node silently drops all
  /// deliveries; subclasses may also clear volatile state on failure.
  virtual void SetUp(bool up) { up_ = up; }
  bool IsUp() const { return up_; }

  /// Registers `link` on `port` (called by Link::Connect).
  void AttachLink(PortId port, Link* link);

  /// Link attached to `port`, or nullptr.
  Link* LinkAt(PortId port) const;

  /// Number of ports with a link attached (ports are dense from 0).
  std::size_t NumPorts() const { return links_.size(); }

  /// Transmits `pkt` out of `port`.  Drops silently (with a counter) if the
  /// port has no link or the node is down.
  void SendTo(PortId port, net::Packet pkt);

  /// Per-node counters ("tx_pkts", "rx_pkts", "drop_no_link", ...).
  Counters& counters() { return counters_; }
  const Counters& counters() const { return counters_; }

 protected:
  Simulator& sim_;

 private:
  NodeId id_;
  std::string name_;
  bool up_ = true;
  std::vector<Link*> links_;
  Counters counters_;
};

}  // namespace redplane::sim
