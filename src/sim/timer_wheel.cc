#include "sim/timer_wheel.h"

#include <bit>
#include <cassert>

namespace redplane::sim {

std::uint32_t TimerWheel::AllocNode() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = nodes_[idx].next;
    return idx;
  }
  if (nodes_.size() >= kMaxNodes) return kNil;
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void TimerWheel::FreeNode(std::uint32_t idx) {
  Node& n = nodes_[idx];
  n.bucket = kFreeBucket;
  n.prev = kNil;
  n.next = free_head_;
  free_head_ = idx;
}

void TimerWheel::Unlink(std::uint32_t idx) {
  Node& n = nodes_[idx];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    heads_[n.bucket] = n.next;
  }
  if (n.next != kNil) nodes_[n.next].prev = n.prev;
  if (n.bucket != kOverflowBucket && heads_[n.bucket] == kNil) {
    occupancy_[n.bucket >> kSlotBits] &=
        ~(1ull << (n.bucket & (kSlotsPerLevel - 1)));
  }
}

void TimerWheel::Place(std::uint32_t idx) {
  Node& n = nodes_[idx];
  const std::uint64_t tick = TickOf(n.time);
  assert(tick >= cur_tick_);
  std::uint16_t bucket;
  if ((tick >> kTopShift) != (cur_tick_ >> kTopShift)) {
    bucket = kOverflowBucket;
    if (tick < overflow_min_tick_) overflow_min_tick_ = tick;
  } else {
    // File at the level of the highest tick-bit group where the expiry
    // differs from the cursor; ties (same tick) go to level 0.
    const std::uint64_t diff = tick ^ cur_tick_;
    const int level =
        diff == 0 ? 0 : (std::bit_width(diff) - 1) / kSlotBits;
    const auto slot = static_cast<std::uint32_t>(
        (tick >> (kSlotBits * level)) & (kSlotsPerLevel - 1));
    bucket = static_cast<std::uint16_t>(level * kSlotsPerLevel + slot);
    occupancy_[level] |= 1ull << slot;
  }
  n.bucket = bucket;
  n.prev = kNil;
  n.next = heads_[bucket];
  if (n.next != kNil) nodes_[n.next].prev = idx;
  heads_[bucket] = idx;
}

std::uint32_t TimerWheel::Schedule(SimTime time, std::uint64_t seq,
                                   std::uint32_t payload) {
  if (TickOf(time) < cur_tick_) return kNil;  // cursor already passed: refuse
  const std::uint32_t idx = AllocNode();
  if (idx == kNil) return kNil;
  Node& n = nodes_[idx];
  n.time = time;
  n.seq = seq;
  n.payload = payload;
  Place(idx);
  ++size_;
  return idx;
}

bool TimerWheel::Cancel(std::uint32_t idx, std::uint64_t seq,
                        std::uint32_t* payload) {
  if (idx >= nodes_.size()) return false;
  Node& n = nodes_[idx];
  if (n.bucket == kFreeBucket || n.seq != seq) return false;
  *payload = n.payload;
  const bool was_overflow = n.bucket == kOverflowBucket;
  const std::uint64_t tick = TickOf(n.time);
  Unlink(idx);
  FreeNode(idx);
  --size_;
  if (was_overflow && tick == overflow_min_tick_) {
    // Recompute the cached overflow minimum (rare: overflow holds only
    // timers beyond the ~19.5 h top-level horizon).
    overflow_min_tick_ = UINT64_MAX;
    for (std::uint32_t i = heads_[kOverflowBucket]; i != kNil;
         i = nodes_[i].next) {
      overflow_min_tick_ = std::min(overflow_min_tick_, TickOf(nodes_[i].time));
    }
  }
  return true;
}

bool TimerWheel::EarliestSlot(int* level, std::uint32_t* slot,
                              std::uint64_t* start_tick) const {
  std::uint64_t best = UINT64_MAX;
  for (int l = 0; l < kLevels; ++l) {
    if (occupancy_[l] == 0) continue;
    // Every occupied slot at level l lies at or ahead of the cursor's
    // index within the current window (earlier ones were popped), so the
    // lowest set bit is the earliest.
    const auto s =
        static_cast<std::uint32_t>(std::countr_zero(occupancy_[l]));
    const int window_bits = kSlotBits * (l + 1);
    const std::uint64_t window_base =
        (cur_tick_ >> window_bits) << window_bits;
    const std::uint64_t start =
        window_base + (static_cast<std::uint64_t>(s) << (kSlotBits * l));
    if (start < best) {
      best = start;
      *level = l;
      *slot = s;
      *start_tick = start;
    }
  }
  return best != UINT64_MAX;
}

SimTime TimerWheel::NextSlotTime() const {
  assert(size_ > 0);
  int level;
  std::uint32_t slot;
  std::uint64_t start_tick = UINT64_MAX;
  EarliestSlot(&level, &slot, &start_tick);
  if (overflow_min_tick_ < start_tick) start_tick = overflow_min_tick_;
  return static_cast<SimTime>(start_tick << kTickShift);
}

void TimerWheel::RefillFromOverflow() {
  std::uint32_t idx = heads_[kOverflowBucket];
  heads_[kOverflowBucket] = kNil;
  overflow_min_tick_ = UINT64_MAX;
  while (idx != kNil) {
    const std::uint32_t next = nodes_[idx].next;
    if ((TickOf(nodes_[idx].time) >> kTopShift) ==
        (cur_tick_ >> kTopShift)) {
      Place(idx);
    } else {
      // Still beyond the horizon: re-park.
      Node& n = nodes_[idx];
      n.bucket = kOverflowBucket;
      n.prev = kNil;
      n.next = heads_[kOverflowBucket];
      if (n.next != kNil) nodes_[n.next].prev = idx;
      heads_[kOverflowBucket] = idx;
      overflow_min_tick_ = std::min(overflow_min_tick_, TickOf(n.time));
    }
    idx = next;
  }
}

void TimerWheel::PopNextSlot(std::vector<Due>& out) {
  assert(size_ > 0);
  for (;;) {
    if (overflow_min_tick_ != UINT64_MAX &&
        (overflow_min_tick_ >> kTopShift) == (cur_tick_ >> kTopShift)) {
      RefillFromOverflow();
    }
    int level;
    std::uint32_t slot;
    std::uint64_t start_tick;
    if (!EarliestSlot(&level, &slot, &start_tick)) {
      // Only overflow timers remain: jump the cursor to the earliest one's
      // top-level window and file what came into range.
      assert(overflow_min_tick_ != UINT64_MAX);
      cur_tick_ = overflow_min_tick_;
      RefillFromOverflow();
      continue;
    }
    cur_tick_ = start_tick;
    const std::uint16_t bucket =
        static_cast<std::uint16_t>(level * kSlotsPerLevel + slot);
    std::uint32_t idx = heads_[bucket];
    heads_[bucket] = kNil;
    occupancy_[level] &= ~(1ull << slot);
    if (level == 0) {
      while (idx != kNil) {
        const std::uint32_t next = nodes_[idx].next;
        const Node& n = nodes_[idx];
        out.push_back(Due{n.time, n.seq, n.payload, idx});
        FreeNode(idx);
        --size_;
        idx = next;
      }
      ++cur_tick_;  // the slot's tick is fully expired
      return;
    }
    // Higher-level slot: cascade its timers down (each re-files at least
    // one level lower now that the cursor is inside their old window).
    while (idx != kNil) {
      const std::uint32_t next = nodes_[idx].next;
      Place(idx);
      idx = next;
    }
  }
}

void TimerWheel::DrainAll(std::vector<Due>& out) {
  for (std::uint16_t b = 0; b <= kOverflowBucket; ++b) {
    std::uint32_t idx = heads_[b];
    heads_[b] = kNil;
    while (idx != kNil) {
      const std::uint32_t next = nodes_[idx].next;
      const Node& n = nodes_[idx];
      out.push_back(Due{n.time, n.seq, n.payload, idx});
      FreeNode(idx);
      idx = next;
    }
  }
  for (auto& occ : occupancy_) occ = 0;
  overflow_min_tick_ = UINT64_MAX;
  size_ = 0;
}

std::array<std::size_t, TimerWheel::kLevels + 1> TimerWheel::CountPerLevel()
    const {
  std::array<std::size_t, kLevels + 1> counts{};
  for (std::uint16_t b = 0; b <= kOverflowBucket; ++b) {
    std::size_t n = 0;
    for (std::uint32_t idx = heads_[b]; idx != kNil; idx = nodes_[idx].next) {
      ++n;
    }
    counts[b == kOverflowBucket ? kLevels : b >> kSlotBits] += n;
  }
  return counts;
}

}  // namespace redplane::sim
