// Owns the nodes and links of a simulated network and provides lookup.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/link.h"
#include "sim/node.h"
#include "sim/simulator.h"

namespace redplane::sim {

class Network {
 public:
  explicit Network(Simulator& sim, std::uint64_t seed = 1);

  Simulator& sim() { return sim_; }

  /// Constructs and registers a node of type T (a Node subclass whose
  /// constructor is T(Simulator&, NodeId, std::string, Args...)).
  template <typename T, typename... Args>
  T* AddNode(const std::string& name, Args&&... args) {
    const NodeId id = static_cast<NodeId>(nodes_.size());
    auto node = std::make_unique<T>(sim_, id, name, std::forward<Args>(args)...);
    T* raw = node.get();
    by_name_[name] = raw;
    nodes_.push_back(std::move(node));
    return raw;
  }

  /// Creates a link between two nodes on the given ports.
  Link* Connect(Node* a, PortId port_a, Node* b, PortId port_b,
                const LinkConfig& config = {});

  Node* GetNode(NodeId id) const;
  Node* FindNode(const std::string& name) const;

  std::size_t NumNodes() const { return nodes_.size(); }
  std::size_t NumLinks() const { return links_.size(); }
  Link* GetLink(std::size_t i) const { return links_[i].get(); }

  /// Returns the link between the two nodes, or nullptr.
  Link* FindLink(const Node* a, const Node* b) const;

  /// Root RNG for deriving component streams.
  Rng& rng() { return rng_; }

 private:
  Simulator& sim_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::unordered_map<std::string, Node*> by_name_;
};

}  // namespace redplane::sim
