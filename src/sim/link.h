// Point-to-point full-duplex link with bandwidth, propagation delay, loss,
// and optional reordering jitter.
//
// Each direction models store-and-forward serialization: a packet occupies
// the transmitter for size/bandwidth seconds (FIFO behind any packet still
// serializing), then arrives after the propagation delay plus an optional
// uniform jitter that can reorder packets — the property RedPlane's request
// sequencing exists to tolerate (§5.2).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "net/packet.h"
#include "obs/tracer.h"
#include "sim/simulator.h"

namespace redplane::sim {

class Node;

struct LinkConfig {
  /// Link rate in bits per second (default 100 Gbps, the testbed's rate).
  double bandwidth_bps = 100e9;
  /// One-way propagation delay.
  SimDuration propagation = Microseconds(1);
  /// Independent per-packet drop probability.
  double loss_rate = 0.0;
  /// Max extra delivery delay, drawn uniformly per packet; a nonzero value
  /// allows adjacent packets to arrive out of order.
  SimDuration reorder_jitter = 0;
};

class Link {
 public:
  Link(Simulator& sim, LinkConfig config, Rng rng);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Wires the link between (a, port_a) and (b, port_b) and registers it on
  /// both nodes.  Must be called exactly once before Transmit.
  void Connect(Node* a, PortId port_a, Node* b, PortId port_b);

  /// Transmits from the endpoint owned by node `from` toward the other end.
  void Transmit(NodeId from, net::Packet pkt);

  /// Administratively disables/enables the link (fiber-cut failure model).
  /// Packets in flight when the link goes down are dropped.
  void SetUp(bool up);
  bool IsUp() const { return up_; }

  const LinkConfig& config() const { return config_; }
  /// Mutable for experiments that vary loss mid-run.
  void set_loss_rate(double p) { config_.loss_rate = p; }

  /// Per-direction loss override for gray-failure injection: asymmetric
  /// loss, or a one-way blackhole (p = 1) modelling a partial partition
  /// where A still reaches B but not vice versa.  `from` names the sending
  /// endpoint; a negative rate clears the override back to the symmetric
  /// config value.
  void SetDirectionLoss(NodeId from, double p);
  /// Effective loss rate for packets sent by `from` (override or config).
  double DirectionLoss(NodeId from) const;

  Node* endpoint_a() const { return a_; }
  Node* endpoint_b() const { return b_; }

  std::uint64_t packets_delivered() const { return delivered_; }
  std::uint64_t packets_dropped() const { return dropped_; }

 private:
  struct Direction {
    SimTime busy_until = 0;
    /// Loss override for this direction; negative = use config_.loss_rate.
    double loss_override = -1.0;
  };

  void Deliver(Node* to, PortId port, net::Packet pkt, std::uint64_t epoch);

  Simulator& sim_;
  LinkConfig config_;
  Rng rng_;
  Node* a_ = nullptr;
  Node* b_ = nullptr;
  PortId port_a_ = kInvalidPort;
  PortId port_b_ = kInvalidPort;
  Direction a_to_b_;
  Direction b_to_a_;
  bool up_ = true;
  /// Incremented on SetUp(false) so in-flight deliveries can be invalidated.
  std::uint64_t epoch_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  obs::TraceHandle trace_;  // named "link:a-b" once connected
};

}  // namespace redplane::sim
