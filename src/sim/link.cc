#include "sim/link.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sim/node.h"

namespace redplane::sim {

Link::Link(Simulator& sim, LinkConfig config, Rng rng)
    : sim_(sim), config_(config), rng_(rng) {
  assert(config_.bandwidth_bps > 0);
}

void Link::Connect(Node* a, PortId port_a, Node* b, PortId port_b) {
  assert(a_ == nullptr && b_ == nullptr);
  a_ = a;
  b_ = b;
  port_a_ = port_a;
  port_b_ = port_b;
  a->AttachLink(port_a, this);
  b->AttachLink(port_b, this);
  trace_.SetName("link:" + a->name() + "-" + b->name());
}

void Link::SetUp(bool up) {
  if (up_ == up) return;
  up_ = up;
  trace_.Emit(up ? obs::Ev::kLinkUp : obs::Ev::kLinkDown);
  if (!up) ++epoch_;  // invalidate in-flight deliveries
}

void Link::SetDirectionLoss(NodeId from, double p) {
  assert(a_ != nullptr && b_ != nullptr);
  Direction& dir = from == a_->id() ? a_to_b_ : b_to_a_;
  dir.loss_override = p < 0 ? -1.0 : std::min(p, 1.0);
}

double Link::DirectionLoss(NodeId from) const {
  const Direction& dir = from == a_->id() ? a_to_b_ : b_to_a_;
  return dir.loss_override >= 0 ? dir.loss_override : config_.loss_rate;
}

void Link::Transmit(NodeId from, net::Packet pkt) {
  assert(a_ != nullptr && b_ != nullptr);
  if (!up_) {
    ++dropped_;
    trace_.Emit(obs::Ev::kLinkDrop, 0, 0, static_cast<double>(pkt.WireSize()));
    return;
  }

  const bool from_a = (from == a_->id());
  assert(from_a || from == b_->id());
  Direction& dir = from_a ? a_to_b_ : b_to_a_;
  const double loss =
      dir.loss_override >= 0 ? dir.loss_override : config_.loss_rate;
  if (loss > 0 && rng_.Bernoulli(loss)) {
    ++dropped_;
    trace_.Emit(obs::Ev::kLinkDrop, 0, 0, static_cast<double>(pkt.WireSize()));
    return;
  }
  Node* to = from_a ? b_ : a_;
  const PortId in_port = from_a ? port_b_ : port_a_;

  const double bits = static_cast<double>(pkt.WireSize()) * 8.0;
  const auto serialization = static_cast<SimDuration>(
      std::ceil(bits / config_.bandwidth_bps * 1e9));
  const SimTime start = std::max(sim_.Now(), dir.busy_until);
  dir.busy_until = start + serialization;

  SimDuration jitter = 0;
  if (config_.reorder_jitter > 0) {
    jitter = static_cast<SimDuration>(
        rng_.NextBounded(static_cast<std::uint64_t>(config_.reorder_jitter)));
  }
  const SimTime arrival = dir.busy_until + config_.propagation + jitter;
  const std::uint64_t epoch = epoch_;
  sim_.ScheduleAt(arrival, [this, to, in_port, pkt = std::move(pkt), epoch]() mutable {
    Deliver(to, in_port, std::move(pkt), epoch);
  });
}

void Link::Deliver(Node* to, PortId port, net::Packet pkt,
                   std::uint64_t epoch) {
  if (!up_ || epoch != epoch_ || !to->IsUp()) {
    ++dropped_;
    trace_.Emit(obs::Ev::kLinkDrop, 0, 0, static_cast<double>(pkt.WireSize()));
    return;
  }
  ++delivered_;
  to->NoteRx(pkt.WireSize());
  to->HandlePacket(std::move(pkt), port);
}

}  // namespace redplane::sim
