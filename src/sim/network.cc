#include "sim/network.h"

namespace redplane::sim {

Network::Network(Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

Link* Network::Connect(Node* a, PortId port_a, Node* b, PortId port_b,
                       const LinkConfig& config) {
  auto link =
      std::make_unique<Link>(sim_, config, rng_.Fork(links_.size() + 0x11));
  Link* raw = link.get();
  raw->Connect(a, port_a, b, port_b);
  links_.push_back(std::move(link));
  return raw;
}

Node* Network::GetNode(NodeId id) const {
  return id < nodes_.size() ? nodes_[id].get() : nullptr;
}

Node* Network::FindNode(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Link* Network::FindLink(const Node* a, const Node* b) const {
  for (const auto& link : links_) {
    if ((link->endpoint_a() == a && link->endpoint_b() == b) ||
        (link->endpoint_a() == b && link->endpoint_b() == a)) {
      return link.get();
    }
  }
  return nullptr;
}

}  // namespace redplane::sim
