// Hierarchical (hashed) timing wheel for coarse timers.
//
// The simulator's binary heap is ideal for the dense near-term events a
// packet in flight generates (link latencies, service completions), but
// protocol timers — retransmit deadlines, lease expirations, renew
// timeouts — live hundreds of microseconds to seconds out, are cancelled
// far more often than they fire, and can number one per flow.  A binary
// heap charges O(log n) per schedule and cannot cancel in place; this
// wheel charges O(1) for schedule and cancel and amortized O(1) per
// expired timer, independent of how many timers are pending (the property
// the Fig. 15 million-flow stress point pins).
//
// Layout: kLevels levels of 64 slots each; one tick is 2^kTickShift
// simulated nanoseconds, and level L slots each span 64^L ticks.  A timer
// is filed at the lowest level whose window (relative to the cursor)
// contains its expiry tick, so near deadlines sit in level 0 and far ones
// higher up; as the cursor reaches a higher-level slot its timers cascade
// down and re-file, each moving down at least one level per cascade.
// Per-level 64-bit occupancy bitmaps make "find the next non-empty slot"
// a handful of ctz instructions, so an idle wheel costs nothing to skip
// over.  Timers beyond the top level's horizon (~19.5 simulated hours at
// the default tick) park in an overflow list and re-file when the cursor
// gets within range.
//
// Nodes live in a slab indexed by dense 24-bit handles; a node records the
// scheduling sequence number it was created with, and Cancel(idx, seq)
// only removes the node if the sequence still matches.  That makes stale
// handles (cancel-after-fire, cancel-after-reuse) safe no-ops without a
// side table — the sequence number is the generation.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace redplane::sim {

class TimerWheel {
 public:
  static constexpr int kLevels = 6;
  static constexpr int kSlotBits = 6;  // 64 slots per level
  static constexpr std::uint32_t kSlotsPerLevel = 1u << kSlotBits;
  /// One tick = 1024 ns: fine enough that a slot never holds more than a
  /// microsecond's worth of deadlines, coarse enough that a 500 µs
  /// retransmit timer files one level up at most.
  static constexpr int kTickShift = 10;
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Node indices must fit the 24 bits the simulator packs into EventIds.
  static constexpr std::uint32_t kMaxNodes = 1u << 24;

  /// One expired (or drained) timer, as reported to the caller.
  struct Due {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t payload;
    std::uint32_t idx;
  };

  /// Schedules a timer at absolute `time`, tagged with the caller's
  /// monotonic `seq` (also the cancellation credential) and an opaque
  /// `payload`.  Returns the node index, or kNil when `time` falls before
  /// the wheel's cursor or the slab is full — the caller must then keep
  /// the timer in its own queue.
  std::uint32_t Schedule(SimTime time, std::uint64_t seq,
                         std::uint32_t payload);

  /// Cancels node `idx` if it still carries `seq`; on success stores the
  /// node's payload in `*payload` and returns true.  A mismatched or
  /// already-fired node is a no-op returning false.
  bool Cancel(std::uint32_t idx, std::uint64_t seq, std::uint32_t* payload);

  bool Empty() const { return size_ == 0; }
  std::size_t Size() const { return size_; }

  /// Lower bound on the earliest pending timer's expiry: the start time of
  /// the earliest occupied slot.  Precondition: !Empty().
  SimTime NextSlotTime() const;

  /// Expires the earliest non-empty bottom-level slot: cascades higher
  /// levels as needed, appends every timer of that slot to `out` (callers
  /// order them; a slot spans one tick so they are near-ties), and
  /// advances the cursor past the slot.  Precondition: !Empty().
  void PopNextSlot(std::vector<Due>& out);

  /// Removes every pending timer, appending each to `out` (destruction
  /// and mass-reset paths: the owner frees the payloads).
  void DrainAll(std::vector<Due>& out);

  /// Pending timers per level ([0..kLevels-1]) plus the overflow-list
  /// length in the final element.  O(pending): walks bucket lists, for the
  /// occupancy gauges the fleet time-series exporter samples per second —
  /// never called on a hot path.
  std::array<std::size_t, kLevels + 1> CountPerLevel() const;

 private:
  struct Node {
    SimTime time = 0;
    std::uint64_t seq = 0;
    std::uint32_t payload = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    /// level * 64 + slot; kOverflowBucket when parked beyond the horizon;
    /// kFreeBucket when on the free list.
    std::uint16_t bucket = kFreeBucket;
  };
  static constexpr std::uint16_t kOverflowBucket = kLevels * kSlotsPerLevel;
  static constexpr std::uint16_t kFreeBucket = 0xffff;
  static constexpr int kTopShift = kSlotBits * kLevels;  // 36: beyond = overflow

  std::uint64_t TickOf(SimTime t) const {
    return static_cast<std::uint64_t>(t) >> kTickShift;
  }

  std::uint32_t AllocNode();
  void FreeNode(std::uint32_t idx);
  /// Unlinks `idx` from its bucket list, clearing the occupancy bit when
  /// the bucket empties.
  void Unlink(std::uint32_t idx);
  /// Files `idx` (whose time is >= the cursor) into its level/slot or the
  /// overflow list.
  void Place(std::uint32_t idx);
  /// Moves overflow timers that came within the top level's horizon into
  /// the wheel proper.
  void RefillFromOverflow();
  /// Earliest occupied slot across levels as (level, slot, start_tick);
  /// returns false when every level is empty (overflow only).
  bool EarliestSlot(int* level, std::uint32_t* slot,
                    std::uint64_t* start_tick) const;

  std::vector<Node> nodes_;
  std::uint32_t free_head_ = kNil;
  std::size_t size_ = 0;
  /// Cursor in ticks: every timer at a strictly earlier tick has been
  /// popped, so inserts before it are refused.
  std::uint64_t cur_tick_ = 0;
  std::uint64_t occupancy_[kLevels] = {};
  std::uint32_t heads_[kLevels * kSlotsPerLevel + 1];  // +1: overflow bucket
  std::uint64_t overflow_min_tick_ = UINT64_MAX;

 public:
  TimerWheel() {
    for (auto& h : heads_) h = kNil;
  }
};

}  // namespace redplane::sim
