// End hosts and servers.
//
// A HostNode is a single-homed endpoint with an IP address and a pluggable
// receive handler; traffic generators, echo reflectors, latency probes, TCP
// endpoints and server-based NFs are all built on it.
#pragma once

#include <functional>

#include "net/headers.h"
#include "net/packet.h"
#include "sim/node.h"

namespace redplane::sim {

class HostNode : public Node {
 public:
  HostNode(Simulator& sim, NodeId id, std::string name, net::Ipv4Addr ip)
      : Node(sim, id, std::move(name)), ip_(ip) {}

  net::Ipv4Addr ip() const { return ip_; }

  /// Installs the receive handler.  Without one, packets are counted and
  /// dropped (a pure sink).
  void SetHandler(std::function<void(HostNode&, net::Packet)> handler) {
    handler_ = std::move(handler);
  }

  /// Transmits out of the host's single uplink.
  void Send(net::Packet pkt) {
    if (trace().armed()) {
      const auto flow = pkt.Flow();
      trace().Emit(obs::Ev::kIngress, flow ? net::HashFlowKey(*flow) : 0, pkt.id,
                   static_cast<double>(pkt.WireSize()));
    }
    SendTo(0, std::move(pkt));
  }

  void HandlePacket(net::Packet pkt, PortId in_port) override {
    (void)in_port;
    if (!IsUp()) return;
    if (trace().armed()) {
      const auto flow = pkt.Flow();
      trace().Emit(obs::Ev::kHostRecv, flow ? net::HashFlowKey(*flow) : 0,
                   pkt.id, static_cast<double>(pkt.WireSize()));
    }
    if (handler_) {
      handler_(*this, std::move(pkt));
    } else {
      counters().Add("sink_pkts");
    }
  }

 private:
  net::Ipv4Addr ip_;
  std::function<void(HostNode&, net::Packet)> handler_;
};

}  // namespace redplane::sim
