#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "obs/profiler.h"

namespace redplane::sim {

namespace {
// Sampled wall-clock accounting of event dispatch: the "everything else"
// bucket that callee ProfScopes (switch/store/codec) subtract from.
obs::ProfSite g_prof_dispatch("sim.dispatch");
}  // namespace

Simulator::Simulator() {
  SetLogClock(this, [this] { return now_; });
}

Simulator::~Simulator() {
  ClearLogClock(this);
  // Destroy the callables of events still queued (cancelled-and-popped
  // slots are already back on the free list and not in the queue).
  while (!queue_.empty()) {
    ReleaseSlot(queue_.top().slot);
    queue_.pop();
  }
}

void Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  cancelled_.insert(id);
}

bool Simulator::PopAndRunOne(SimTime limit) {
  while (!queue_.empty()) {
    const QueuedEvent top = queue_.top();
    if (top.time > limit) return false;
    queue_.pop();
    --pending_;
    // Skip tombstoned events.
    if (!cancelled_.empty() && cancelled_.erase(top.id) > 0) {
      ReleaseSlot(top.slot);
      continue;
    }
    assert(top.time >= now_);
    now_ = top.time;
    ++processed_;
    {
      obs::ProfScope prof(g_prof_dispatch);
      InvokeSlot(top.slot);  // may schedule more events; slab blocks never move
    }
    ReleaseSlot(top.slot);
    return true;
  }
  return false;
}

std::size_t Simulator::Run(std::size_t limit) {
  std::size_t count = 0;
  while (count < limit && PopAndRunOne(INT64_MAX)) ++count;
  return count;
}

void Simulator::RunUntil(SimTime t) {
  while (PopAndRunOne(t)) {
  }
  now_ = std::max(now_, t);
}

}  // namespace redplane::sim
