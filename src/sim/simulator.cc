#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "obs/profiler.h"

namespace redplane::sim {

namespace {
// Sampled wall-clock accounting of event dispatch: the "everything else"
// bucket that callee ProfScopes (switch/store/codec) subtract from.
obs::ProfSite g_prof_dispatch("sim.dispatch");
}  // namespace

Simulator::Simulator() {
  SetLogClock(this, [this] { return now_; });
}

Simulator::~Simulator() {
  ClearLogClock(this);
  // Destroy the callables of events still queued (cancelled-and-popped
  // slots are already back on the free list and not in the queue).
  while (!queue_.empty()) {
    ReleaseSlot(queue_.top().slot);
    queue_.pop();
  }
  due_buf_.clear();
  wheel_.DrainAll(due_buf_);
  for (const TimerWheel::Due& d : due_buf_) ReleaseSlot(d.payload);
}

void Simulator::Cancel(EventId id) {
  const EventId seq = id & kSeqMask;
  if (seq == 0 || seq >= next_id_) return;
  if ((id & kWheelFlag) != 0) {
    const auto idx = static_cast<std::uint32_t>((id & ~kWheelFlag)
                                                >> kWheelIdxShift);
    std::uint32_t slot;
    if (wheel_.Cancel(idx, seq, &slot)) {
      // Still parked in the wheel: free the callable immediately — O(1),
      // no tombstone to carry.
      ReleaseSlot(slot);
      --pending_;
      return;
    }
    // Already spilled into the heap (or long fired): tombstone the packed
    // id, which is what the spilled QueuedEvent carries.
  }
  cancelled_.insert(id);
}

void Simulator::SpillDueWheelSlots(SimTime limit) {
  while (!wheel_.Empty()) {
    const SimTime at = wheel_.NextSlotTime();  // lower bound on earliest
    if (at > limit) return;
    if (!queue_.empty() && queue_.top().time < at) return;
    due_buf_.clear();
    wheel_.PopNextSlot(due_buf_);
    for (const TimerWheel::Due& d : due_buf_) {
      queue_.push(QueuedEvent{
          d.time,
          kWheelFlag | (static_cast<EventId>(d.idx) << kWheelIdxShift) |
              d.seq,
          d.payload});
    }
  }
}

bool Simulator::PopAndRunOne(SimTime limit) {
  for (;;) {
    // Re-spill each iteration: skipping a tombstoned heap event can move
    // the heap top past wheel slots that were not due a moment ago.  The
    // inline empty check keeps the wheel entirely off the dispatch path
    // when no coarse timers are pending (the packet-burst common case).
    if (!wheel_.Empty()) SpillDueWheelSlots(limit);
    if (queue_.empty()) return false;
    const QueuedEvent top = queue_.top();
    if (top.time > limit) return false;
    queue_.pop();
    --pending_;
    // Skip tombstoned events.
    if (!cancelled_.empty() && cancelled_.erase(top.id) > 0) {
      ReleaseSlot(top.slot);
      continue;
    }
    assert(top.time >= now_);
    now_ = top.time;
    ++processed_;
    {
      obs::ProfScope prof(g_prof_dispatch);
      InvokeSlot(top.slot);  // may schedule more events; slab blocks never move
    }
    ReleaseSlot(top.slot);
    return true;
  }
}

std::size_t Simulator::Run(std::size_t limit) {
  std::size_t count = 0;
  while (count < limit && PopAndRunOne(INT64_MAX)) ++count;
  return count;
}

void Simulator::RunUntil(SimTime t) {
  while (PopAndRunOne(t)) {
  }
  now_ = std::max(now_, t);
}

}  // namespace redplane::sim
