#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace redplane::sim {

Simulator::Simulator() {
  SetLogClock(this, [this] { return now_; });
}

Simulator::~Simulator() { ClearLogClock(this); }

EventId Simulator::Schedule(SimDuration delay, std::function<void()> fn) {
  return ScheduleAt(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

EventId Simulator::ScheduleAt(SimTime t, std::function<void()> fn) {
  const EventId id = next_id_++;
  queue_.push(Event{std::max(t, now_), id, std::move(fn)});
  ++pending_;
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return;
  cancelled_.push_back(id);
}

bool Simulator::PopAndRunOne(SimTime limit) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time > limit) return false;
    // Skip tombstoned events.
    auto it = std::find(cancelled_.begin(), cancelled_.end(), top.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      --pending_;
      continue;
    }
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    --pending_;
    assert(ev.time >= now_);
    now_ = ev.time;
    ++processed_;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulator::Run(std::size_t limit) {
  std::size_t count = 0;
  while (count < limit && PopAndRunOne(INT64_MAX)) ++count;
  return count;
}

void Simulator::RunUntil(SimTime t) {
  while (PopAndRunOne(t)) {
  }
  now_ = std::max(now_, t);
}

}  // namespace redplane::sim
