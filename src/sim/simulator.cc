#include "sim/simulator.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "obs/profiler.h"

namespace redplane::sim {

namespace {
// Sampled wall-clock accounting of event dispatch: the "everything else"
// bucket that callee ProfScopes (switch/store/codec) subtract from.
obs::ProfSite g_prof_dispatch("sim.dispatch");
}  // namespace

Simulator::Simulator() {
  SetLogClock(this, [this] { return now_; });
}

Simulator::~Simulator() {
  ClearLogClock(this);
  // Destroy the callables of events still queued (cancelled-and-popped
  // slots are already back on the free list and not in the queue).
  for (const QueuedEvent& ev : queue_) ReleaseSlot(ev.slot);
  queue_.clear();
  due_buf_.clear();
  wheel_.DrainAll(due_buf_);
  for (const TimerWheel::Due& d : due_buf_) ReleaseSlot(d.payload);
}

void Simulator::Cancel(EventId id) {
  if ((id & kWheelFlag) != 0) {
    const EventId seq = id & kSeqMask;
    if (seq == 0 || seq >= next_id_) return;
    const auto idx = static_cast<std::uint32_t>((id & ~kWheelFlag)
                                                >> kWheelIdxShift);
    std::uint32_t slot;
    if (wheel_.Cancel(idx, seq, &slot)) {
      // Still parked in the wheel: free the callable immediately — O(1),
      // no tombstone to carry.
      ReleaseSlot(slot);
      --pending_;
      return;
    }
    // Already spilled into the heap (or long fired): tombstone the packed
    // id, which is what the spilled QueuedEvent carries.
  } else if (id == 0 || id >= next_id_) {
    return;
  }
  cancelled_.insert(id);
  // Cancelling an event that already fired (or double-cancelling) leaves a
  // tombstone no pop will ever erase.  Under mass cancel/re-arm churn those
  // dead tombstones used to accumulate without bound; purge them whenever
  // they outnumber the events that could legitimately still match.
  if (cancelled_.size() > 64 && cancelled_.size() > 2 * queue_.size()) {
    PurgeStaleTombstones();
  }
}

void Simulator::PurgeStaleTombstones() {
  std::unordered_set<EventId> live;
  live.reserve(queue_.size());
  for (const QueuedEvent& ev : queue_) live.insert(ev.id);
  for (auto it = cancelled_.begin(); it != cancelled_.end();) {
    // A tombstoned wheel id whose event is still parked in the wheel cannot
    // exist: Cancel() frees parked events directly.  So any id absent from
    // the heap is dead — either already fired or already skipped.
    it = live.count(*it) == 0 ? cancelled_.erase(it) : std::next(it);
  }
}

void Simulator::SpillDueWheelSlots(SimTime limit) {
  while (!wheel_.Empty()) {
    const SimTime at = wheel_.NextSlotTime();  // lower bound on earliest
    if (at > limit) return;
    if (!queue_.empty() && queue_.front().time < at) return;
    due_buf_.clear();
    wheel_.PopNextSlot(due_buf_);
    for (const TimerWheel::Due& d : due_buf_) {
      PushQueued(QueuedEvent{
          d.time,
          kWheelFlag | (static_cast<EventId>(d.idx) << kWheelIdxShift) |
              d.seq,
          d.payload});
    }
  }
}

bool Simulator::PopAndRunOne(SimTime limit) {
  for (;;) {
    // Re-spill each iteration: skipping a tombstoned heap event can move
    // the heap top past wheel slots that were not due a moment ago.  The
    // inline empty check keeps the wheel entirely off the dispatch path
    // when no coarse timers are pending (the packet-burst common case).
    if (!wheel_.Empty()) SpillDueWheelSlots(limit);
    if (queue_.empty()) return false;
    if (queue_.front().time > limit) return false;
    const QueuedEvent top = PopQueued();
    --pending_;
    // Skip tombstoned events.
    if (!cancelled_.empty() && cancelled_.erase(top.id) > 0) {
      ReleaseSlot(top.slot);
      continue;
    }
    assert(top.time >= now_);
    now_ = top.time;
    ++processed_;
    {
      obs::ProfScope prof(g_prof_dispatch);
      InvokeSlot(top.slot);  // may schedule more events; slab blocks never move
    }
    ReleaseSlot(top.slot);
    return true;
  }
}

std::size_t Simulator::Run(std::size_t limit) {
  std::size_t count = 0;
  while (count < limit && PopAndRunOne(INT64_MAX)) ++count;
  return count;
}

void Simulator::RunUntil(SimTime t) {
  while (PopAndRunOne(t)) {
  }
  now_ = std::max(now_, t);
}

}  // namespace redplane::sim
