#include "sim/node.h"

#include "sim/link.h"

namespace redplane::sim {

Node::Node(Simulator& sim, NodeId id, std::string name)
    : sim_(sim), id_(id), name_(std::move(name)) {}

Node::~Node() = default;

void Node::AttachLink(PortId port, Link* link) {
  if (port >= links_.size()) links_.resize(port + 1, nullptr);
  links_[port] = link;
}

Link* Node::LinkAt(PortId port) const {
  return port < links_.size() ? links_[port] : nullptr;
}

void Node::SendTo(PortId port, net::Packet pkt) {
  if (!up_) {
    counters_.Add("drop_node_down");
    return;
  }
  Link* link = LinkAt(port);
  if (link == nullptr) {
    counters_.Add("drop_no_link");
    return;
  }
  counters_.Add("tx_pkts");
  counters_.Add("tx_bytes", static_cast<double>(pkt.WireSize()));
  link->Transmit(id_, std::move(pkt));
}

}  // namespace redplane::sim
