#include "sim/node.h"

#include "sim/link.h"

namespace redplane::sim {

Node::Node(Simulator& sim, NodeId id, std::string name)
    : sim_(sim), id_(id), name_(std::move(name)), metrics_(name_), trace_(name_) {
  tx_pkts_ = metrics_.RegisterCounter("tx_pkts");
  tx_bytes_ = metrics_.RegisterCounter("tx_bytes");
  rx_pkts_ = metrics_.RegisterCounter("rx_pkts");
  rx_bytes_ = metrics_.RegisterCounter("rx_bytes");
  drop_node_down_ = metrics_.RegisterCounter("drop_node_down");
  drop_no_link_ = metrics_.RegisterCounter("drop_no_link");
}

Node::~Node() = default;

void Node::SetUp(bool up) {
  if (up_ != up) {
    trace_.Emit(up ? obs::Ev::kNodeRecovery : obs::Ev::kNodeFailure);
  }
  up_ = up;
}

void Node::AttachLink(PortId port, Link* link) {
  if (port >= links_.size()) links_.resize(port + 1, nullptr);
  links_[port] = link;
}

Link* Node::LinkAt(PortId port) const {
  return port < links_.size() ? links_[port] : nullptr;
}

void Node::SendTo(PortId port, net::Packet pkt) {
  if (!up_) {
    drop_node_down_.Add();
    return;
  }
  Link* link = LinkAt(port);
  if (link == nullptr) {
    drop_no_link_.Add();
    return;
  }
  tx_pkts_.Add();
  tx_bytes_.Add(static_cast<double>(pkt.WireSize()));
  link->Transmit(id_, std::move(pkt));
}

}  // namespace redplane::sim
