// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (a monotonic tiebreak sequence), so a given seed always
// produces an identical run.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace redplane::sim {

/// Handle to a scheduled event; allows cancellation.
using EventId = std::uint64_t;

class Simulator {
 public:
  /// Construction registers this simulator's clock with the logger, so
  /// RP_LOG lines carry simulated time (`[t=1.234ms]`); destruction
  /// unregisters it (last simulator constructed wins).
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` from now (delay may be 0; negative delays
  /// are clamped to 0).  Returns an id usable with Cancel().
  EventId Schedule(SimDuration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute time `t` (clamped to Now()).
  EventId ScheduleAt(SimTime t, std::function<void()> fn);

  /// Cancels a pending event.  Cancelling an already-fired or unknown event
  /// is a no-op.  O(1): the event is tombstoned and skipped when popped.
  void Cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events processed.
  std::size_t Run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= t; afterwards Now() == t (even if the
  /// queue emptied earlier), so periodic processes can be restarted.
  void RunUntil(SimTime t);

  /// Total events processed since construction.
  std::uint64_t EventsProcessed() const { return processed_; }

  /// Number of pending (non-cancelled) events.
  std::size_t PendingEvents() const { return pending_; }

 private:
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;

    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  bool PopAndRunOne(SimTime limit);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t pending_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<EventId> cancelled_;  // sorted insertion not needed; small
};

}  // namespace redplane::sim
