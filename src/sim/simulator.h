// Discrete-event simulation kernel.
//
// Single-threaded, deterministic: events at equal timestamps fire in
// scheduling order (a monotonic tiebreak sequence), so a given seed always
// produces an identical run.
//
// Event storage is allocation-free in steady state: callables live in slabs
// of fixed-size slots recycled through free lists (heap fallback only for
// captures larger than the inline budget), and the priority queue holds
// plain {time, id, slot} records.  Once the slabs and queue are warm,
// scheduling and dispatching an event touches no allocator.  Two slot
// classes keep the cache footprint proportional to what events actually
// capture: small captures (a `this` pointer and a few words — the vast
// majority) get one-cache-line slots, while packet-carrying callables get
// kInlineCallableSize-byte slots.  Slabs grow in fixed blocks that never
// move, so slot addresses stay stable while a running callable schedules
// further events (growing a flat vector would move the storage out from
// under the callable being invoked).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/timer_wheel.h"

namespace redplane::sim {

/// Handle to a scheduled event; allows cancellation.
///
/// Packing: bit 63 set means the event lives in the timer wheel; bits 62:39
/// then hold the wheel node index and bits 38:0 the scheduling sequence
/// number (the determinism tiebreak).  Heap-resident events are just the
/// sequence number.  Callers treat the id as opaque either way.
using EventId = std::uint64_t;

class Simulator {
 public:
  /// Callables with captures up to this size are stored inline in the large
  /// slab (covers a Packet plus several pointers); larger ones fall back to
  /// one heap allocation.
  static constexpr std::size_t kInlineCallableSize = 256;

  /// Captures at or below this size use the small slab, whose slots fit a
  /// single cache line including their dispatch metadata.
  static constexpr std::size_t kSmallCallableSize = 32;

  /// Events at least this far in the future are coarse timers: they go to
  /// the hierarchical timing wheel (O(1) schedule/cancel) instead of the
  /// binary heap, and spill into the heap just in time to dispatch.  The
  /// default clears the dense band of packet-propagation events (hundreds
  /// of ns to a few µs) while catching protocol timers (retransmit, renew,
  /// lease expiry: hundreds of µs to seconds).
  static constexpr SimDuration kDefaultCoarseThreshold = Microseconds(64);

  /// Construction registers this simulator's clock with the logger, so
  /// RP_LOG lines carry simulated time (`[t=1.234ms]`); destruction
  /// unregisters it (last simulator constructed wins).
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run `delay` from now (delay may be 0; negative delays
  /// are clamped to 0).  Returns an id usable with Cancel().
  template <typename F>
  EventId Schedule(SimDuration delay, F&& fn) {
    return ScheduleAt(now_ + (delay > 0 ? delay : 0), std::forward<F>(fn));
  }

  /// Schedules `fn` at absolute time `t` (clamped to Now()).
  template <typename F>
  EventId ScheduleAt(SimTime t, F&& fn) {
    using Fn = std::decay_t<F>;
    std::uint32_t slot;
    if constexpr (sizeof(Fn) <= kSmallCallableSize &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      slot = small_slab_.Alloc();
      small_slab_.Emplace(slot, std::forward<F>(fn));
    } else {
      slot = large_slab_.Alloc();
      large_slab_.Emplace(slot, std::forward<F>(fn));
      slot |= kLargeSlot;
    }
    const EventId seq = next_id_++;
    const SimTime at = t > now_ ? t : now_;
    // Wheel ids pack the sequence into 39 bits; past that (≈5.5e11 events)
    // coarse timers stop using the wheel rather than corrupting the packed
    // node index (the assert that used to guard this vanished in release
    // builds — found by the fuzz campaign's handle audit).
    if (at - now_ >= coarse_threshold_ && seq <= kSeqMask) {
      // The wheel refuses times its cursor already passed (it can run a
      // little ahead of now_ when a due slot was spilled early) and slab
      // exhaustion; both fall back to the heap.
      const std::uint32_t idx = wheel_.Schedule(at, seq, slot);
      if (idx != TimerWheel::kNil) {
        ++pending_;
        return kWheelFlag | (static_cast<EventId>(idx) << kWheelIdxShift) |
               seq;
      }
    }
    PushQueued(QueuedEvent{at, seq, slot});
    ++pending_;
    return seq;
  }

  /// Cancels a pending event.  Cancelling an already-fired or unknown event
  /// is a no-op.  O(1): the event is tombstoned and skipped when popped.
  void Cancel(EventId id);

  /// Runs events until the queue is empty or `limit` events have fired.
  /// Returns the number of events processed.
  std::size_t Run(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= t; afterwards Now() == t (even if the
  /// queue emptied earlier), so periodic processes can be restarted.
  void RunUntil(SimTime t);

  /// Total events processed since construction.
  std::uint64_t EventsProcessed() const { return processed_; }

  /// Number of pending (non-cancelled) events.
  std::size_t PendingEvents() const { return pending_; }

  /// Number of cancel tombstones currently carried for events that were no
  /// longer parked in the wheel when cancelled.  Bounded: Cancel() purges
  /// tombstones that no longer match any queued event, so mass cancel /
  /// re-arm churn cannot grow this without bound (pinned by a stress test).
  std::size_t CancelTombstones() const { return cancelled_.size(); }

  /// Number of pending coarse timers currently parked in the timing wheel
  /// (excludes due slots already spilled into the heap).
  std::size_t CoarseTimersPending() const { return wheel_.Size(); }

  /// Read-only view of the timing wheel (per-level occupancy gauges).
  const TimerWheel& wheel() const { return wheel_; }

  /// Sets the delay at or beyond which events are stored in the timing
  /// wheel rather than the binary heap.  The backing store never changes
  /// firing times or tie order, so traces stay bit-identical across
  /// thresholds — the property the determinism tests pin.  INT64_MAX
  /// disables the wheel entirely.
  void SetCoarseTimerThreshold(SimDuration threshold) {
    coarse_threshold_ = threshold;
  }

 private:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;
  /// Slot-index tag bit selecting the large slab.
  static constexpr std::uint32_t kLargeSlot = 0x80000000u;
  /// Slabs grow one fixed block at a time, keeping cold-start allocation
  /// O(events / block) rather than per-event.
  static constexpr std::uint32_t kSlotsPerBlock = 64;

  /// EventId packing (see the EventId comment).
  static constexpr EventId kWheelFlag = 1ull << 63;
  static constexpr int kWheelIdxShift = 39;
  static constexpr EventId kSeqMask = (1ull << kWheelIdxShift) - 1;

  struct QueuedEvent {
    SimTime time;
    EventId id;
    std::uint32_t slot;

    bool operator>(const QueuedEvent& other) const {
      if (time != other.time) return time > other.time;
      // Compare by scheduling sequence first: events spilled from the wheel
      // carry their packed id (wheel flag + node index in the high bits)
      // but must keep their original schedule-order tiebreak against
      // heap-resident peers.  The full-id fallback only matters once the
      // 39-bit sequence space wraps for heap events (wheel ids never do);
      // it keeps the order deterministic there too.
      const EventId a = id & kSeqMask, b = other.id & kSeqMask;
      if (a != b) return a > b;
      return id > other.id;
    }
  };

  /// Free-listed pool of slots with `N` bytes of inline callable storage.
  /// Blocks are never moved or freed before the simulator dies, so a slot
  /// reference stays valid across any amount of scheduling.
  template <std::size_t N>
  class Slab {
   public:
    /// One cell: inline storage for the type-erased callable, or a heap
    /// pointer when the callable exceeds the inline budget.
    struct Slot {
      alignas(std::max_align_t) std::byte storage[N];
      void (*invoke)(void*) = nullptr;
      void (*destroy)(void*) = nullptr;
      void* heap = nullptr;
      std::uint32_t next_free = kNoSlot;
    };

    std::uint32_t Alloc() {
      if (free_head_ != kNoSlot) {
        const std::uint32_t index = free_head_;
        free_head_ = At(index).next_free;
        return index;
      }
      if (size_ == blocks_.size() * kSlotsPerBlock) {
        // Default-init, not value-init: zeroing each slot's inline storage
        // would memset the whole block for bytes the callable overwrites.
        blocks_.push_back(
            std::make_unique_for_overwrite<Slot[]>(kSlotsPerBlock));
      }
      return size_++;
    }

    template <typename F>
    void Emplace(std::uint32_t index, F&& fn) {
      using Fn = std::decay_t<F>;
      Slot& s = At(index);
      if constexpr (sizeof(Fn) <= N &&
                    alignof(Fn) <= alignof(std::max_align_t)) {
        ::new (static_cast<void*>(s.storage)) Fn(std::forward<F>(fn));
        s.heap = nullptr;
        s.invoke = [](void* p) { (*std::launder(static_cast<Fn*>(p)))(); };
        s.destroy = [](void* p) { std::launder(static_cast<Fn*>(p))->~Fn(); };
      } else {
        s.heap = new Fn(std::forward<F>(fn));
        s.invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
        s.destroy = [](void* p) { delete static_cast<Fn*>(p); };
      }
    }

    void Invoke(std::uint32_t index) {
      Slot& s = At(index);
      s.invoke(s.heap != nullptr ? s.heap : static_cast<void*>(s.storage));
    }

    /// Destroys the slot's callable (if still present) and returns the slot
    /// to the free list.
    void Release(std::uint32_t index) {
      Slot& s = At(index);
      if (s.destroy != nullptr) {
        s.destroy(s.heap != nullptr ? s.heap : static_cast<void*>(s.storage));
        s.destroy = nullptr;
        s.invoke = nullptr;
        s.heap = nullptr;
      }
      s.next_free = free_head_;
      free_head_ = index;
    }

   private:
    Slot& At(std::uint32_t index) {
      return blocks_[index / kSlotsPerBlock][index % kSlotsPerBlock];
    }

    std::vector<std::unique_ptr<Slot[]>> blocks_;
    std::uint32_t size_ = 0;
    std::uint32_t free_head_ = kNoSlot;
  };

  void InvokeSlot(std::uint32_t slot) {
    if ((slot & kLargeSlot) != 0) {
      large_slab_.Invoke(slot & ~kLargeSlot);
    } else {
      small_slab_.Invoke(slot);
    }
  }

  void ReleaseSlot(std::uint32_t slot) {
    if ((slot & kLargeSlot) != 0) {
      large_slab_.Release(slot & ~kLargeSlot);
    } else {
      small_slab_.Release(slot);
    }
  }

  bool PopAndRunOne(SimTime limit);
  /// Moves every wheel slot due at or before `limit` and not after the
  /// current heap top into the heap, preserving (time, sequence) order.
  void SpillDueWheelSlots(SimTime limit);

  /// Min-heap primitives over queue_ (same ordering std::priority_queue
  /// used; an open vector so PurgeStaleTombstones can scan live ids).
  void PushQueued(QueuedEvent ev) {
    queue_.push_back(ev);
    std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
  }
  QueuedEvent PopQueued() {
    std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
    const QueuedEvent ev = queue_.back();
    queue_.pop_back();
    return ev;
  }

  /// Drops every tombstone that no longer matches a queued event.  Called
  /// from Cancel() when the tombstone set outgrows the live queue: without
  /// it, cancelling an id that already fired (mass cancel/re-arm churn —
  /// the fuzz campaign's lease-churn attack) parked one dead entry in
  /// `cancelled_` forever.
  void PurgeStaleTombstones();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  /// Lives with the other hot scalars (read on every ScheduleAt), not
  /// after the ~1.6 KB wheel where it would cost its own cache line.
  SimDuration coarse_threshold_ = kDefaultCoarseThreshold;
  std::uint64_t processed_ = 0;
  std::size_t pending_ = 0;
  /// Binary min-heap on (time, seq), maintained with std::push_heap /
  /// std::pop_heap — identical pop order to the std::priority_queue it
  /// replaced, but the underlying vector stays scannable for tombstone
  /// purging.
  std::vector<QueuedEvent> queue_;
  Slab<kSmallCallableSize> small_slab_;
  Slab<kInlineCallableSize> large_slab_;
  /// Tombstones for cancelled-but-not-yet-popped events (O(1) insert/erase;
  /// the old linear-scanned vector degraded under retransmit-heavy runs).
  std::unordered_set<EventId> cancelled_;
  /// Coarse timers (wheel node payload = the callable's slot index).
  TimerWheel wheel_;
  /// Scratch for PopNextSlot/DrainAll output; reused to stay allocation-free
  /// in steady state.
  std::vector<TimerWheel::Due> due_buf_;
};

}  // namespace redplane::sim
