// Fig. 9: end-to-end RTT for RedPlane-enabled applications: NAT, firewall,
// load balancer, EPC-SGW, heavy-hitter detection, Async-Counter, and
// Sync-Counter with and without state-store chain replication.
//
// All applications run RedPlane-enabled on a single aggregation switch
// (failure-free); the probe host stamps send times and an echo host
// reflects.  Read-centric and asynchronously-replicated apps should match
// the no-fault-tolerance baseline at every percentile; Sync-Counter pays a
// store round trip per packet, with the chain adding its traversal.
#include <chrono>
#include <cstdio>

#include "harness.h"

using namespace redplane;
using namespace redplane::bench;

namespace {

constexpr std::size_t kPackets = 30'000;
constexpr std::size_t kFlows = 500;

struct Setup {
  Deployment deploy;
  routing::Testbed* tb = nullptr;

  void Build(int chain_size,
             std::function<std::vector<std::byte>(const net::PartitionKey&)>
                 initializer = nullptr) {
    routing::TestbedConfig config;
    config.fabric_link.propagation = Nanoseconds(500);
    config.host_link.propagation = Nanoseconds(500);
    config.store.service_time = Microseconds(2);
    config.store_chain_size = chain_size;
    config.store.initializer = std::move(initializer);
    deploy.Build(config);
    tb = &deploy.testbed();
    routing::FailureInjector injector(deploy.sim(), *tb->fabric);
    injector.FailNode(tb->agg[1]);  // single-switch, failure-free probing
    deploy.sim().RunUntil(Seconds(1));
  }

  /// Replays a probe trace internal->external and returns RTT samples.
  SampleSet ProbeInternalToExternal(bool signaling_mix = false) {
    RttProbe probe(tb->rack_servers[0][0]);
    InstallEcho(tb->external[0]);
    Rng rng(99);
    SampleSet out;
    if (!signaling_mix) {
      trace::FlowMixConfig mix;
      mix.num_packets = kPackets;
      mix.num_flows = kFlows;
      mix.dst_port = 80;
      mix.proto = net::IpProto::kUdp;
      mix.mean_interarrival = Microseconds(10);
      auto packets = trace::GenerateFlowMix(rng, mix);
      ShapeFlowChurn(packets, Microseconds(800));
      const SimTime start = deploy.sim().Now();
      SimTime last = start;
      for (const auto& spec : packets) {
        net::FlowKey flow = spec.flow;
        flow.src_ip = routing::RackServerIp(0, 0);
        flow.dst_ip = routing::ExternalHostIp(0);
        const std::uint32_t pad =
            spec.size_bytes > 62 ? spec.size_bytes - 62 : 8;
        last = start + spec.time;
        deploy.sim().ScheduleAt(start + spec.time,
                                [&probe, flow, pad]() { probe.Send(flow, pad); });
      }
      // Bounded drain: periodic processes (snapshots, renewals) never
      // empty the event queue, so don't wait for them to.
      deploy.sim().RunUntil(last + Milliseconds(100));
    }
    return std::move(probe.rtt_us());
  }
};

SampleSet RunNat() {
  auto nat_global = std::make_shared<apps::NatGlobalState>(
      kNatIp, 5000, 4096, kInternalPrefix, kInternalMask);
  Setup setup;
  setup.Build(3, [nat_global](const net::PartitionKey& key) {
    return nat_global->InitializeFlow(key);
  });
  setup.deploy.AnycastToAgg(kNatIp, 0);
  apps::NatApp nat(*nat_global);
  setup.deploy.DeployRedPlane(nat);
  return setup.ProbeInternalToExternal();
}

SampleSet RunFirewall() {
  Setup setup;
  setup.Build(3);
  apps::FirewallApp fw(kInternalPrefix, kInternalMask);
  setup.deploy.DeployRedPlane(fw);
  return setup.ProbeInternalToExternal();
}

SampleSet RunLoadBalancer() {
  auto lb_global = std::make_shared<apps::LbGlobalState>(kVip, 80);
  lb_global->AddBackend(routing::RackServerIp(0, 0), 80);
  Setup setup;
  setup.Build(3, [lb_global](const net::PartitionKey& key) {
    return lb_global->InitializeFlow(key);
  });
  setup.deploy.AnycastToAgg(kVip, 0);
  apps::LoadBalancerApp lb(*lb_global);
  setup.deploy.DeployRedPlane(lb);

  // External clients probe the VIP; the backend echoes.
  RttProbe probe(setup.tb->external[0]);
  InstallEcho(setup.tb->rack_servers[0][0]);
  Rng rng(7);
  auto& sim = setup.deploy.sim();
  SimTime t = sim.Now();
  for (std::size_t i = 0; i < kPackets; ++i) {
    t += static_cast<SimDuration>(rng.Exponential(10'000));
    // Introduce client connections gradually (steady churn), as real
    // client populations do.
    const std::size_t active = std::min(kFlows, 1 + i / 60);
    net::FlowKey flow{routing::ExternalHostIp(0), kVip,
                      static_cast<std::uint16_t>(10000 + i % active), 80,
                      net::IpProto::kUdp};
    sim.ScheduleAt(t, [&probe, flow]() { probe.Send(flow, 40); });
  }
  sim.RunUntil(t + Milliseconds(100));
  return std::move(probe.rtt_us());
}

SampleSet RunEpcSgw() {
  Setup setup;
  setup.Build(3);
  apps::EpcSgwApp sgw;
  setup.deploy.DeployRedPlane(sgw);

  // Downlink data to users (echoed by the user host) with 1 signaling per
  // 17 data packets, as in the paper.
  RttProbe probe(setup.tb->external[0]);
  InstallEcho(setup.tb->rack_servers[0][1]);
  auto& sim = setup.deploy.sim();
  Rng rng(13);
  const net::Ipv4Addr user = routing::RackServerIp(0, 1);
  SimTime t = sim.Now();
  std::size_t since_signaling = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    t += static_cast<SimDuration>(rng.Exponential(10'000));
    if (++since_signaling > 17) {
      since_signaling = 0;
      sim.ScheduleAt(t, [&setup, user]() {
        setup.tb->external[0]->Send(apps::MakeSgwSignalingPacket(
            routing::ExternalHostIp(0), user,
            static_cast<std::uint32_t>(user.value & 0xffff),
            net::Ipv4Addr(1, 1, 1, 1)));
      });
      continue;
    }
    net::FlowKey flow{routing::ExternalHostIp(0), user,
                      static_cast<std::uint16_t>(40000 + i % 64),
                      apps::kSgwDataPort, net::IpProto::kUdp};
    sim.ScheduleAt(t, [&probe, flow]() { probe.Send(flow, 100); });
  }
  sim.RunUntil(t + Milliseconds(100));
  return std::move(probe.rtt_us());
}

SampleSet RunHeavyHitter() {
  Setup setup;
  setup.Build(3);
  apps::HeavyHitterConfig hh_config;
  hh_config.vlans = {1};
  apps::HeavyHitterApp hh(hh_config);
  core::RedPlaneConfig rp;
  rp.linearizable = false;
  rp.snapshot_period = Milliseconds(1);
  setup.deploy.DeployRedPlane(hh, rp);
  setup.deploy.redplane(0)->StartSnapshotReplication(hh);

  RttProbe probe(setup.tb->rack_servers[0][0]);
  InstallEcho(setup.tb->external[0]);
  auto& sim = setup.deploy.sim();
  Rng rng(17);
  SimTime t = sim.Now();
  for (std::size_t i = 0; i < kPackets; ++i) {
    t += static_cast<SimDuration>(rng.Exponential(10'000));
    net::FlowKey flow{routing::RackServerIp(0, 0), routing::ExternalHostIp(0),
                      static_cast<std::uint16_t>(20000 + i % kFlows), 80,
                      net::IpProto::kUdp};
    sim.ScheduleAt(t, [&probe, flow]() {
      net::Packet pkt = net::MakeUdpPacket(flow, 40);
      pkt.vlan = 1;
      probe.SendPacket(std::move(pkt));
    });
  }
  sim.RunUntil(t + Milliseconds(100));
  return std::move(probe.rtt_us());
}

SampleSet RunCounter(bool synchronous, int chain_size,
                     ObsSession* obs = nullptr) {
  Setup setup;
  setup.Build(chain_size);
  apps::SyncCounterApp sync_app;
  // 256 counter slots snapshotted every 5 ms: the replication stream stays
  // a small fraction of traffic, as in the paper's async configuration.
  apps::AsyncCounterApp async_app(256);
  core::RedPlaneConfig rp;
  rp.linearizable = synchronous;
  rp.snapshot_period = Milliseconds(5);
  core::SwitchApp& app =
      synchronous ? static_cast<core::SwitchApp&>(sync_app)
                  : static_cast<core::SwitchApp&>(async_app);
  setup.deploy.DeployRedPlane(app, rp);
  if (!synchronous) {
    setup.deploy.redplane(0)->StartSnapshotReplication(async_app);
  }
  if (obs != nullptr) {
    obs->AttachTracer(setup.deploy.sim());
    obs->Watch(setup.deploy.redplane(0)->stats());
    for (auto* server : setup.tb->store) obs->Watch(server->counters());
    obs->StartSampling(setup.deploy.sim(), obs->metrics_period(), Seconds(2));
  }
  SampleSet out = setup.ProbeInternalToExternal();
  if (obs != nullptr) {
    obs->SampleOnce(setup.deploy.sim().Now());
    obs->UnwatchAll();
    obs->DetachTracer();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  ObsSession* obs_ptr = obs.enabled() ? &obs : nullptr;
  std::printf("=== Fig. 9: end-to-end RTT, RedPlane-enabled applications ===\n");
  std::printf("(%zu probes per app, single switch, failure-free; chain "
              "replication of 3 unless noted)\n\n",
              kPackets);
  struct Row {
    const char* name;
    SampleSet samples;
  };
  std::vector<Row> rows;
  const auto timed = [&rows](const char* name, SampleSet samples) {
    static auto last = std::chrono::steady_clock::now();
    const auto now = std::chrono::steady_clock::now();
    std::fprintf(stderr, "[fig09] %s done in %lld ms\n", name,
                 static_cast<long long>(
                     std::chrono::duration_cast<std::chrono::milliseconds>(
                         now - last)
                         .count()));
    last = now;
    rows.push_back({name, std::move(samples)});
  };
  timed("NAT", RunNat());
  timed("Firewall", RunFirewall());
  timed("Load balancer", RunLoadBalancer());
  timed("EPC-SGW", RunEpcSgw());
  timed("HH-detection", RunHeavyHitter());
  timed("Async-Counter", RunCounter(false, 3));
  timed("Sync-Counter (w/o chain)", RunCounter(true, 1));
  // The chain-replicated Sync-Counter run is the observability target: its
  // spans traverse every chain hop.
  timed("Sync-Counter (w/ chain)", RunCounter(true, 3, obs_ptr));
  for (auto& row : rows) {
    PrintLatencySummary(row.name, row.samples);
  }
  std::printf("\nPaper anchors: NAT/firewall/LB/EPC-SGW/HH all share the "
              "8 us median of the no-FT baseline;\nSync-Counter adds ~8 us "
              "without chain replication and ~20 us with it (every packet "
              "is a\nsynchronous write).\n\n");
  for (auto& row : rows) {
    PrintCdf(row.name, row.samples);
  }
  return 0;
}
