// Table 2: switch ASIC resources consumed by RedPlane (100K flows),
// relative to a Tofino-class pipeline budget.
//
// Paper values for comparison: Match Crossbar 5.3%, Meter ALU 8.3%,
// Gateway 9.9%, SRAM 13.2%, TCAM 11.8%, VLIW 5.5%, Hash Bits 3.7%.
#include <cstdio>

#include "dataplane/resources.h"
#include "harness.h"

using namespace redplane;

int main() {
  std::printf("=== Table 2: Switch ASIC resources used by RedPlane ===\n");
  std::printf("(100K concurrent flows; fraction of a 12-stage Tofino-class "
              "pipeline budget)\n\n");

  const std::pair<const char*, double> kPaper[] = {
      {"Match Crossbar", 0.053}, {"Meter ALU", 0.083}, {"Gateway", 0.099},
      {"SRAM", 0.132},           {"TCAM", 0.118},      {"VLIW Instruction", 0.055},
      {"Hash Bits", 0.037},
  };

  dp::ResourceModel model;
  dp::PlaceRedPlaneObjects(model, 100'000);
  const auto usage = model.FractionOfBudget(dp::PipelineBudget::Tofino());

  bench::TablePrinter table({"Resource", "Measured", "Paper"});
  for (const auto& [name, frac] : usage) {
    double paper = 0;
    for (const auto& [pname, pfrac] : kPaper) {
      if (name == pname) paper = pfrac;
    }
    table.Row({name, FormatDouble(frac * 100, 1) + "%",
               FormatDouble(paper * 100, 1) + "%"});
  }

  std::printf("\nScaling with concurrent flows (SRAM only; others fixed):\n");
  bench::TablePrinter scaling({"Flows", "SRAM"});
  for (std::uint64_t flows : {10'000ull, 50'000ull, 100'000ull, 200'000ull}) {
    dp::ResourceModel m;
    dp::PlaceRedPlaneObjects(m, flows);
    const auto u = m.FractionOfBudget(dp::PipelineBudget::Tofino());
    for (const auto& [name, frac] : u) {
      if (name == std::string("SRAM")) {
        scaling.Row({std::to_string(flows), FormatDouble(frac * 100, 1) + "%"});
      }
    }
  }

  std::printf("\nPlaced objects:\n");
  for (const auto& obj : model.objects()) {
    std::printf("  %s\n", obj.c_str());
  }
  return 0;
}
