// Fig. 13: in-switch key-value store throughput vs update ratio, for 1-3
// state-store shards.
//
// At paper scale (hundreds of Mpps offered) this uses the calibrated
// analytic model (as the paper itself does for its at-scale analysis); the
// model is validated against packet-level simulation in tests/ and by the
// small-scale packet-level sweep printed below.
#include <cstdio>

#include <deque>
#include <map>

#include "core/analytic.h"
#include "harness.h"
#include "net/codec.h"

using namespace redplane;

namespace {

double PacketLevelGoodput(double update_ratio, SimDuration store_service,
                          bench::ObsSession* obs = nullptr) {
  bench::Deployment deploy;
  routing::TestbedConfig cfg;
  cfg.store.service_time = store_service;
  deploy.Build(cfg);
  apps::KvStoreApp kv;
  deploy.DeployRedPlane(kv);
  if (obs != nullptr) {
    obs->AttachTracer(deploy.sim());
    obs->Watch(deploy.redplane(0)->stats());
    for (auto* server : deploy.testbed().store) obs->Watch(server->counters());
    obs->StartSampling(deploy.sim(), obs->metrics_period(), Milliseconds(20));
  }

  std::uint64_t replies = 0;
  deploy.testbed().external[0]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++replies; });

  Rng rng(3);
  trace::KvOpsConfig ops;
  ops.num_ops = 3000;
  ops.num_keys = 128;
  ops.update_ratio = update_ratio;
  ops.mean_interarrival = Microseconds(3);
  net::FlowKey client{routing::ExternalHostIp(0), routing::RackServerIp(0, 0),
                      3333, apps::kKvUdpPort, net::IpProto::kUdp};
  SimTime last = 0;
  for (const auto& op : trace::GenerateKvOps(rng, ops)) {
    last = op.time;
    deploy.sim().ScheduleAt(op.time, [&deploy, client, op]() {
      deploy.testbed().external[0]->Send(
          apps::MakeKvPacket(client, op.request));
    });
  }
  deploy.sim().Run();
  if (obs != nullptr) {
    obs->SampleOnce(deploy.sim().Now());
    obs->UnwatchAll();
    obs->DetachTracer();
  }
  return static_cast<double>(replies) / ToSeconds(last) / 1e6;  // Mops/s
}

// --- Consistency modes (DESIGN.md section 14): read latency ----------------
//
// KvStoreApp declares replicated-read; both columns pin the mode explicitly
// through RedPlaneConfig::mode_override so the comparison is deployment-
// controlled, not declaration-controlled.  Few keys + a mixed workload put
// reads behind their own key's in-flight updates, which is exactly where the
// modes diverge: single-owner loops such reads through the store's buffering
// path, replicated-read answers them from local state within the staleness
// bound.

struct KvModeResult {
  double mops = 0;          // replies per second of completed-run time
  SampleSet read_rtt_us;
  double local_reads = 0;
  double buffered_reads = 0;
};

KvModeResult KvModeRun(core::ConsistencyMode mode, double update_ratio,
                       SimDuration store_service) {
  bench::Deployment deploy;
  routing::TestbedConfig cfg;
  cfg.store.service_time = store_service;
  deploy.Build(cfg);
  apps::KvStoreApp kv;
  core::RedPlaneConfig rp;
  rp.mode_override = mode;
  rp.staleness_bound = Milliseconds(1);
  deploy.DeployRedPlane(kv, rp);

  KvModeResult r;
  std::uint64_t replies = 0;
  // Read replies echo the key, so a per-key FIFO of send times recovers each
  // read's round trip (per-key ordering holds on the local-serve path and is
  // close enough on the buffering path for percentile comparison).
  std::map<std::uint64_t, std::deque<SimTime>> pending_reads;
  deploy.testbed().external[0]->SetHandler(
      [&](sim::HostNode& self, net::Packet pkt) {
        ++replies;
        net::ByteReader rd(pkt.payload);
        const auto op = static_cast<apps::KvOp>(rd.U8());
        const std::uint64_t key = rd.U64();
        rd.U64();
        if (!rd.ok() || op != apps::KvOp::kRead) return;
        auto it = pending_reads.find(key);
        if (it == pending_reads.end() || it->second.empty()) return;
        r.read_rtt_us.Add(ToMicroseconds(self.sim().Now() - it->second.front()));
        it->second.pop_front();
      });

  Rng rng(3);
  trace::KvOpsConfig ops;
  ops.num_ops = 3000;
  ops.num_keys = 16;
  ops.update_ratio = update_ratio;
  ops.mean_interarrival = Microseconds(3);
  net::FlowKey client{routing::ExternalHostIp(0), routing::RackServerIp(0, 0),
                      3333, apps::kKvUdpPort, net::IpProto::kUdp};
  for (const auto& op : trace::GenerateKvOps(rng, ops)) {
    deploy.sim().ScheduleAt(op.time, [&deploy, &pending_reads, client, op]() {
      if (op.request.op == apps::KvOp::kRead) {
        pending_reads[op.request.key].push_back(deploy.sim().Now());
      }
      deploy.testbed().external[0]->Send(apps::MakeKvPacket(client, op.request));
    });
  }
  deploy.sim().Run();
  r.mops = static_cast<double>(replies) / ToSeconds(deploy.sim().Now()) / 1e6;
  // No failure is injected here, so ECMP may land flows on either agg
  // switch: sum the counters over both.
  for (int i = 0; i < 2; ++i) {
    r.local_reads += deploy.redplane(i)->stats().Get("local_reads_served");
    r.buffered_reads += deploy.redplane(i)->stats().Get("reads_buffered");
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== Fig. 13: KV-store throughput vs update ratio ===\n\n");
  std::printf("-- analytic model, paper scale (Mpps) --\n");
  bench::TablePrinter table(
      {"Update ratio", "1 store", "2 stores", "3 stores"});
  for (double u = 0.0; u <= 1.001; u += 0.1) {
    std::vector<std::string> row{FormatDouble(u, 1)};
    for (int stores = 1; stores <= 3; ++stores) {
      core::AnalyticConfig cfg;
      cfg.sync_update_fraction = u;
      cfg.num_stores = stores;
      cfg.store_rps = 35e6;
      row.push_back(FormatDouble(
          core::PredictThroughput(cfg).throughput_pps / 1e6, 1));
    }
    table.Row(row);
  }

  std::printf("\n-- packet-level validation, small scale (Mops/s completed; "
              "single store, 2 us service) --\n");
  bench::TablePrinter small({"Update ratio", "Goodput"});
  for (double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // Instrument the all-updates point: every op pays a store round trip.
    bench::ObsSession* obs_ptr = obs.enabled() && u == 1.0 ? &obs : nullptr;
    small.Row({FormatDouble(u, 2),
               FormatDouble(PacketLevelGoodput(u, Microseconds(2), obs_ptr),
                            3)});
  }
  obs.Finish();
  std::printf("\nShape check: throughput falls as the update ratio grows "
              "(every update pays a store round trip);\nadding store shards "
              "shifts the curve up — matching the paper's Fig. 13.\n");

  std::printf("\n-- consistency modes (DESIGN.md section 14): pinned "
              "single-owner vs replicated-read --\n");
  std::printf("   (update ratio 0.5, 16 keys, 4 us store service; read "
              "latency at the client)\n");
  bench::TablePrinter modes({"Mode", "Mops/s", "Read p50 us", "Read p99 us",
                             "Local reads", "Buffered reads"});
  const KvModeResult kv_single =
      KvModeRun(core::ConsistencyMode::kSingleOwner, 0.5, Microseconds(4));
  const KvModeResult kv_repl =
      KvModeRun(core::ConsistencyMode::kReplicatedRead, 0.5, Microseconds(4));
  auto kv_mode_row = [&](const char* name, const KvModeResult& r) {
    modes.Row({name, FormatDouble(r.mops, 3),
               FormatDouble(r.read_rtt_us.Percentile(50), 1),
               FormatDouble(r.read_rtt_us.Percentile(99), 1),
               FormatDouble(r.local_reads, 0),
               FormatDouble(r.buffered_reads, 0)});
  };
  kv_mode_row("single-owner", kv_single);
  kv_mode_row("replicated-read", kv_repl);
  std::printf("\nReads that land behind their own key's in-flight update "
              "loop through the store under\nsingle-owner but are answered "
              "from local state under replicated-read (within the\n1 ms "
              "staleness bound) — the tail read latency is where the "
              "buffering path shows up.\n");
  return 0;
}
