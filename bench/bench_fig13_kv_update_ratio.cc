// Fig. 13: in-switch key-value store throughput vs update ratio, for 1-3
// state-store shards.
//
// At paper scale (hundreds of Mpps offered) this uses the calibrated
// analytic model (as the paper itself does for its at-scale analysis); the
// model is validated against packet-level simulation in tests/ and by the
// small-scale packet-level sweep printed below.
#include <cstdio>

#include "core/analytic.h"
#include "harness.h"

using namespace redplane;

namespace {

double PacketLevelGoodput(double update_ratio, SimDuration store_service,
                          bench::ObsSession* obs = nullptr) {
  bench::Deployment deploy;
  routing::TestbedConfig cfg;
  cfg.store.service_time = store_service;
  deploy.Build(cfg);
  apps::KvStoreApp kv;
  deploy.DeployRedPlane(kv);
  if (obs != nullptr) {
    obs->AttachTracer(deploy.sim());
    obs->Watch(deploy.redplane(0)->stats());
    for (auto* server : deploy.testbed().store) obs->Watch(server->counters());
    obs->StartSampling(deploy.sim(), obs->metrics_period(), Milliseconds(20));
  }

  std::uint64_t replies = 0;
  deploy.testbed().external[0]->SetHandler(
      [&](sim::HostNode&, net::Packet) { ++replies; });

  Rng rng(3);
  trace::KvOpsConfig ops;
  ops.num_ops = 3000;
  ops.num_keys = 128;
  ops.update_ratio = update_ratio;
  ops.mean_interarrival = Microseconds(3);
  net::FlowKey client{routing::ExternalHostIp(0), routing::RackServerIp(0, 0),
                      3333, apps::kKvUdpPort, net::IpProto::kUdp};
  SimTime last = 0;
  for (const auto& op : trace::GenerateKvOps(rng, ops)) {
    last = op.time;
    deploy.sim().ScheduleAt(op.time, [&deploy, client, op]() {
      deploy.testbed().external[0]->Send(
          apps::MakeKvPacket(client, op.request));
    });
  }
  deploy.sim().Run();
  if (obs != nullptr) {
    obs->SampleOnce(deploy.sim().Now());
    obs->UnwatchAll();
    obs->DetachTracer();
  }
  return static_cast<double>(replies) / ToSeconds(last) / 1e6;  // Mops/s
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== Fig. 13: KV-store throughput vs update ratio ===\n\n");
  std::printf("-- analytic model, paper scale (Mpps) --\n");
  bench::TablePrinter table(
      {"Update ratio", "1 store", "2 stores", "3 stores"});
  for (double u = 0.0; u <= 1.001; u += 0.1) {
    std::vector<std::string> row{FormatDouble(u, 1)};
    for (int stores = 1; stores <= 3; ++stores) {
      core::AnalyticConfig cfg;
      cfg.sync_update_fraction = u;
      cfg.num_stores = stores;
      cfg.store_rps = 35e6;
      row.push_back(FormatDouble(
          core::PredictThroughput(cfg).throughput_pps / 1e6, 1));
    }
    table.Row(row);
  }

  std::printf("\n-- packet-level validation, small scale (Mops/s completed; "
              "single store, 2 us service) --\n");
  bench::TablePrinter small({"Update ratio", "Goodput"});
  for (double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    // Instrument the all-updates point: every op pays a store round trip.
    bench::ObsSession* obs_ptr = obs.enabled() && u == 1.0 ? &obs : nullptr;
    small.Row({FormatDouble(u, 2),
               FormatDouble(PacketLevelGoodput(u, Microseconds(2), obs_ptr),
                            3)});
  }
  obs.Finish();
  std::printf("\nShape check: throughput falls as the update ratio grows "
              "(every update pays a store round trip);\nadding store shards "
              "shifts the curve up — matching the paper's Fig. 13.\n");
  return 0;
}
