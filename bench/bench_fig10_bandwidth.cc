// Fig. 10: replication bandwidth overhead per application — the share of
// total traffic consumed by RedPlane protocol messages (requests and
// responses) versus original packets.
//
// Paper anchors: ~0-1% for read-centric apps (NAT, firewall, LB), 12.8% for
// EPC-SGW, negligible for HH detection (1 ms snapshots), and 51.2% for
// Sync-Counter (whose requests carry headers plus the piggybacked packet).
#include <cstdio>

#include "harness.h"
#include "net/codec.h"

using namespace redplane;
using namespace redplane::bench;

namespace {

constexpr std::size_t kPackets = 30'000;

struct BandwidthResult {
  double original = 0;
  double requests = 0;
  double responses = 0;

  double OverheadPct() const {
    const double total = original + requests + responses;
    return total > 0 ? 100.0 * (requests + responses) / total : 0;
  }
};

struct Harness {
  Deployment deploy;
  routing::Testbed* tb = nullptr;

  void Build(std::function<std::vector<std::byte>(const net::PartitionKey&)>
                 initializer = nullptr) {
    routing::TestbedConfig config;
    config.store.initializer = std::move(initializer);
    deploy.Build(config);
    tb = &deploy.testbed();
    routing::FailureInjector injector(deploy.sim(), *tb->fabric);
    injector.FailNode(tb->agg[1]);
    deploy.sim().RunUntil(Seconds(1));
  }

  BandwidthResult Collect() {
    // Drain to the end of the injected traffic plus a short settling tail;
    // running longer would let periodic snapshot traffic accumulate against
    // a finished workload and skew the ratio.
    deploy.sim().RunUntil(inject_end + Milliseconds(5));
    BandwidthResult result;
    result.original = deploy.redplane(0)->original_bytes();
    result.requests = deploy.redplane(0)->protocol_request_bytes();
    result.responses = deploy.redplane(0)->protocol_response_bytes();
    return result;
  }

  /// 64 B packets across flows with realistic gradual flow churn, as in
  /// the paper's bandwidth experiments.  `num_users` > 0 spreads EPC
  /// traffic over that many user addresses (all terminating at one rack
  /// server, like anycast user prefixes).
  void Inject(std::size_t flows, std::uint16_t vlan = 0,
              std::size_t data_per_signaling = 0, std::size_t num_users = 0,
              SimDuration interarrival = Microseconds(4),
              SimDuration churn_gap = Milliseconds(1), bool stamp = false) {
    Rng rng(41);
    auto& sim = deploy.sim();
    std::vector<net::Ipv4Addr> users;
    for (std::size_t u = 0; u < num_users; ++u) {
      net::Ipv4Addr ip(100, 64, 0, static_cast<std::uint8_t>(10 + u));
      tb->fabric->AssignAddress(tb->rack_servers[0][1], ip);
      users.push_back(ip);
    }
    if (num_users > 0) tb->fabric->RecomputeNow();

    trace::FlowMixConfig mix;
    mix.num_packets = kPackets;
    mix.num_flows = flows;
    mix.realistic_sizes = false;  // 64 B
    mix.mean_interarrival = interarrival;
    mix.proto = net::IpProto::kUdp;
    auto packets = trace::GenerateFlowMix(rng, mix);
    ShapeFlowChurn(packets, churn_gap);
    const SimTime start = sim.Now();
    std::size_t since_signaling = 0;
    std::size_t user_cursor = 0;
    for (const auto& spec : packets) {
      inject_end = start + spec.time;
      const net::Ipv4Addr dst =
          users.empty() ? routing::RackServerIp(0, 1)
                        : users[user_cursor++ % users.size()];
      if (data_per_signaling > 0 && ++since_signaling > data_per_signaling) {
        since_signaling = 0;
        sim.ScheduleAt(inject_end, [this, dst]() {
          tb->external[0]->Send(apps::MakeSgwSignalingPacket(
              routing::ExternalHostIp(0), dst, 7, net::Ipv4Addr(1, 1, 1, 1)));
        });
        continue;
      }
      net::FlowKey flow = spec.flow;
      flow.src_ip = routing::ExternalHostIp(0);
      flow.dst_ip = dst;
      flow.dst_port = data_per_signaling > 0 ? apps::kSgwDataPort
                                             : std::uint16_t{80};
      sim.ScheduleAt(inject_end, [this, flow, vlan, stamp]() {
        net::Packet pkt = net::MakeUdpPacket(flow, 0);  // min-size frame
        pkt.vlan = vlan;
        if (stamp) {
          // Send time in the payload: the delivery handler turns it into a
          // one-way switch-traversal latency (payload bytes survive
          // RedPlane's piggybacking, as in RttProbe).
          std::vector<std::byte> buf;
          net::ByteWriter w(buf);
          w.U64(static_cast<std::uint64_t>(deploy.sim().Now()));
          pkt.payload = std::move(buf);
        }
        tb->external[0]->Send(std::move(pkt));
      });
    }
  }

  SimTime inject_end = 0;
};

BandwidthResult RunReadCentric(const char* which) {
  auto nat_global = std::make_shared<apps::NatGlobalState>(
      kNatIp, 5000, 4096, net::Ipv4Addr(10, 0, 0, 0), 0xff000000);
  auto lb_global = std::make_shared<apps::LbGlobalState>(kVip, 80);
  lb_global->AddBackend(routing::RackServerIp(0, 0), 80);

  Harness h;
  std::unique_ptr<core::SwitchApp> app;
  if (std::string_view(which) == "nat") {
    // "Internal" = the external hosts' prefix so min-size outbound flows
    // allocate mappings.
    h.Build([nat_global](const net::PartitionKey& key) {
      return nat_global->InitializeFlow(key);
    });
    app = std::make_unique<apps::NatApp>(*nat_global);
  } else if (std::string_view(which) == "firewall") {
    h.Build();
    app = std::make_unique<apps::FirewallApp>(net::Ipv4Addr(10, 0, 0, 0),
                                              0xff000000);
  } else {
    h.Build([lb_global](const net::PartitionKey& key) {
      return lb_global->InitializeFlow(key);
    });
    app = std::make_unique<apps::LoadBalancerApp>(*lb_global);
  }
  h.deploy.DeployRedPlane(*app);
  // Long-lived flows with modest churn, as in the replayed traces.
  h.Inject(/*flows=*/200);
  return h.Collect();
}

BandwidthResult RunEpc() {
  Harness h;
  h.Build();
  apps::EpcSgwApp sgw;
  h.deploy.DeployRedPlane(sgw);
  // A population of users; signaling (and therefore write-buffering)
  // touches one user's partition at a time.
  h.Inject(/*flows=*/200, 0, /*data_per_signaling=*/17, /*num_users=*/32);
  return h.Collect();
}

BandwidthResult RunHeavyHitter() {
  Harness h;
  h.Build();
  apps::HeavyHitterConfig cfg;
  cfg.vlans = {1};
  apps::HeavyHitterApp hh(cfg);
  core::RedPlaneConfig rp;
  rp.linearizable = false;
  rp.snapshot_period = Milliseconds(1);
  h.deploy.DeployRedPlane(hh, rp);
  h.deploy.redplane(0)->StartSnapshotReplication(hh);
  // Write-centric traffic runs at high rate; snapshot bandwidth is fixed,
  // so its share is rate-dependent (the paper measures at ~Tbps-scale
  // injection).
  h.Inject(/*flows=*/200, /*vlan=*/1, 0, 0, /*interarrival=*/Nanoseconds(300));
  return h.Collect();
}

BandwidthResult RunSyncCounter(ObsSession* obs) {
  Harness h;
  h.Build();
  apps::SyncCounterApp counter;
  h.deploy.DeployRedPlane(counter);
  if (obs != nullptr) {
    // Sync-Counter is the observability showcase: every packet's write
    // traverses the full switch → store chain → ack lifecycle, so its spans
    // exercise every segment kind.
    obs->AttachTracer(h.deploy.sim());
    obs->Watch(h.deploy.redplane(0)->stats());
    for (auto* server : h.tb->store) obs->Watch(server->counters());
    obs->StartSampling(h.deploy.sim(), obs->metrics_period(), Seconds(2));
  }
  h.Inject(/*flows=*/200);
  BandwidthResult r = h.Collect();
  if (obs != nullptr) {
    obs->SampleOnce(h.deploy.sim().Now());
    obs->UnwatchAll();
    obs->DetachTracer();
  }
  return r;
}

// --- Replication batching at the write-heavy operating point ----------------
//
// Sync-Counter replicates every packet, so it is the point where per-request
// wire overhead (IP/UDP headers per replication packet) and per-request
// store service slots dominate.  Coalescing (DESIGN.md §10) amortizes both:
// N requests share one packet's headers and one store service slot.

struct BatchingResult {
  BandwidthResult bw;
  double req_bytes = 0;        // replication request bytes on the wire
  double store_slots = 0;      // store-head service occupancies
  double store_subs = 0;       // requests served (same with/without batching)
  double batch_envelopes = 0;  // envelopes sent by the switch
};

BatchingResult RunSyncCounterBatching(SimDuration coalesce_delay) {
  Harness h;
  h.Build();
  apps::SyncCounterApp counter;
  core::RedPlaneConfig rp;
  rp.coalesce_delay = coalesce_delay;
  h.deploy.DeployRedPlane(counter, rp);
  h.Inject(/*flows=*/200);
  BatchingResult r;
  r.bw = h.Collect();
  r.req_bytes = h.deploy.redplane(0)->protocol_request_bytes();
  const auto* head = h.tb->store.front();
  // One service occupancy per wire arrival: an envelope of N costs one slot.
  r.store_slots = static_cast<double>(head->busy_time()) /
                  static_cast<double>(head->config().service_time);
  r.store_subs = head->counters().Get("repl_reqs") +
                 head->counters().Get("renew_reqs") +
                 head->counters().Get("init_reqs");
  r.batch_envelopes = h.deploy.redplane(0)->stats().Get("batch_envelopes");
  return r;
}

// --- Consistency-mode spectrum at the write-heavy operating point -----------
//
// Sync-Counter is where the consistency mode matters most: every packet is a
// write, so single-owner holds every output behind a store round trip while
// mergeable (DESIGN.md §14) releases at zero RTT and durably merges on a
// timer.  Replicated-read only relaxes reads, so on an all-writes workload it
// tracks the single-owner point (the residual gap is the store's subscriber
// pushes, which exist only in that mode).

struct ModeResult {
  BandwidthResult bw;
  SampleSet oneway_us;  // injection -> delivery, through the owner switch
  double delivered = 0;
  double merge_deltas = 0;
};

ModeResult RunSyncCounterMode(core::ConsistencyMode mode) {
  Harness h;
  h.Build();
  apps::SyncCounterApp counter;
  core::RedPlaneConfig rp;
  rp.mode_override = mode;
  h.deploy.DeployRedPlane(counter, rp);
  ModeResult r;
  sim::HostNode* sink = h.tb->rack_servers[0][1];
  sink->SetHandler([&r, sink](sim::HostNode&, net::Packet pkt) {
    ++r.delivered;
    if (pkt.payload.size() < 8) return;
    net::ByteReader rd(pkt.payload);
    const auto sent_at = static_cast<SimTime>(rd.U64());
    const SimTime now = sink->sim().Now();
    if (now >= sent_at) r.oneway_us.Add(ToMicroseconds(now - sent_at));
  });
  h.Inject(/*flows=*/200, 0, 0, 0, Microseconds(4), Milliseconds(1),
           /*stamp=*/true);
  r.bw = h.Collect();
  r.merge_deltas = h.deploy.redplane(0)->stats().Get("merge_deltas_sent");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  ObsSession* obs_ptr = obs.enabled() ? &obs : nullptr;
  std::printf("=== Fig. 10: RedPlane replication bandwidth overhead ===\n");
  std::printf("(64 B packets, 1000 flows, %zu packets per app)\n\n", kPackets);
  struct Row {
    const char* name;
    BandwidthResult r;
  };
  const Row rows[] = {
      {"NAT", RunReadCentric("nat")},
      {"Firewall", RunReadCentric("firewall")},
      {"Load balancer", RunReadCentric("lb")},
      {"EPC-SGW", RunEpc()},
      {"HH-detector", RunHeavyHitter()},
      {"Sync-Counter", RunSyncCounter(obs_ptr)},
  };
  TablePrinter table({"Application", "Original %", "RedPlane req %",
                      "RedPlane resp %", "Overhead %"});
  for (const Row& row : rows) {
    const double total = row.r.original + row.r.requests + row.r.responses;
    auto pct = [&](double v) {
      return FormatDouble(total > 0 ? 100.0 * v / total : 0, 1);
    };
    table.Row({row.name, pct(row.r.original), pct(row.r.requests),
               pct(row.r.responses),
               FormatDouble(row.r.OverheadPct(), 1)});
  }
  std::printf("\nPaper anchors: read-centric apps ~0-1%% overhead (protocol "
              "messages only for each flow's first packet);\nEPC-SGW 12.8%% "
              "(signaling writes + buffered data); HH-detector <1%% at 1 ms "
              "snapshots;\nSync-Counter ~51%% (every packet's request and "
              "response carry headers plus the packet itself).\n");

  std::printf("\n=== Replication batching (Sync-Counter, write-per-packet) "
              "===\n\n");
  const BatchingResult off = RunSyncCounterBatching(0);
  const BatchingResult on = RunSyncCounterBatching(Microseconds(16));
  TablePrinter batch_table({"Coalescing", "Req bytes", "Store slots",
                            "Reqs served", "Envelopes", "Overhead %"});
  auto batch_row = [&](const char* name, const BatchingResult& r) {
    batch_table.Row({name, FormatDouble(r.req_bytes, 0),
                     FormatDouble(r.store_slots, 0),
                     FormatDouble(r.store_subs, 0),
                     FormatDouble(r.batch_envelopes, 0),
                     FormatDouble(r.bw.OverheadPct(), 1)});
  };
  batch_row("off", off);
  batch_row("16 us", on);
  std::printf("\nSame requests served either way; batching shares one "
              "packet's headers and one store\nservice slot across a "
              "coalescing window's worth of writes (bytes on the wire and\n"
              "store occupancies both drop).\n");

  std::printf("\n=== Consistency-mode spectrum (Sync-Counter, DESIGN.md "
              "section 14) ===\n\n");
  const ModeResult single =
      RunSyncCounterMode(core::ConsistencyMode::kSingleOwner);
  const ModeResult replicated =
      RunSyncCounterMode(core::ConsistencyMode::kReplicatedRead);
  const ModeResult mergeable =
      RunSyncCounterMode(core::ConsistencyMode::kMergeable);
  TablePrinter mode_table({"Mode", "Overhead %", "Delivered", "One-way p50 us",
                           "One-way p99 us", "Merge deltas"});
  auto mode_row = [&](const char* name, const ModeResult& r) {
    mode_table.Row({name, FormatDouble(r.bw.OverheadPct(), 1),
                    FormatDouble(r.delivered, 0),
                    FormatDouble(r.oneway_us.Percentile(50), 1),
                    FormatDouble(r.oneway_us.Percentile(99), 1),
                    FormatDouble(r.merge_deltas, 0)});
  };
  mode_row("single-owner", single);
  mode_row("replicated-read", replicated);
  mode_row("mergeable", mergeable);
  std::printf("\nEvery Sync-Counter packet is a write, so single-owner holds "
              "each output behind a store\nround trip; replicated-read only "
              "relaxes reads and tracks it to within the store's\nsubscriber "
              "pushes; mergeable releases at zero RTT and durably merges its "
              "local state on\na timer, so both the delivery latency and the "
              "replication overhead collapse.\n");

  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fprintf(
          f,
          "{\n"
          "  \"experiment\": \"fig10_sync_counter_batching\",\n"
          "  \"coalesce_delay_us\": {\"off\": 0, \"on\": 16},\n"
          "  \"before\": {\"req_bytes\": %.0f, \"store_slots\": %.0f, "
          "\"reqs_served\": %.0f, \"overhead_pct\": %.2f},\n"
          "  \"after\": {\"req_bytes\": %.0f, \"store_slots\": %.0f, "
          "\"reqs_served\": %.0f, \"envelopes\": %.0f, "
          "\"overhead_pct\": %.2f},\n"
          "  \"req_bytes_drop_pct\": %.2f,\n"
          "  \"store_slots_drop_pct\": %.2f,\n"
          "  \"consistency_modes\": {\n"
          "    \"single_owner\": {\"overhead_pct\": %.2f, \"delivered\": "
          "%.0f, \"oneway_p50_us\": %.2f, \"oneway_p99_us\": %.2f},\n"
          "    \"replicated_read\": {\"overhead_pct\": %.2f, \"delivered\": "
          "%.0f, \"oneway_p50_us\": %.2f, \"oneway_p99_us\": %.2f},\n"
          "    \"mergeable\": {\"overhead_pct\": %.2f, \"delivered\": %.0f, "
          "\"oneway_p50_us\": %.2f, \"oneway_p99_us\": %.2f, "
          "\"merge_deltas\": %.0f}\n"
          "  }\n"
          "}\n",
          off.req_bytes, off.store_slots, off.store_subs,
          off.bw.OverheadPct(), on.req_bytes, on.store_slots, on.store_subs,
          on.batch_envelopes, on.bw.OverheadPct(),
          off.req_bytes > 0
              ? 100.0 * (off.req_bytes - on.req_bytes) / off.req_bytes
              : 0,
          off.store_slots > 0
              ? 100.0 * (off.store_slots - on.store_slots) / off.store_slots
              : 0,
          single.bw.OverheadPct(), single.delivered,
          single.oneway_us.Percentile(50), single.oneway_us.Percentile(99),
          replicated.bw.OverheadPct(), replicated.delivered,
          replicated.oneway_us.Percentile(50),
          replicated.oneway_us.Percentile(99), mergeable.bw.OverheadPct(),
          mergeable.delivered, mergeable.oneway_us.Percentile(50),
          mergeable.oneway_us.Percentile(99), mergeable.merge_deltas);
      std::fclose(f);
      std::printf("\nWrote %s\n", argv[1]);
    }
  }
  obs.Finish();
  return 0;
}
