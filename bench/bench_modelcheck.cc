// Protocol correctness verification (paper §5.5 / Appendix C).
//
// Exhaustively model-checks the RedPlane protocol — the C++ analogue of the
// paper's TLA+ specification — across switch counts and adversarial
// settings, reporting state-space sizes and the verified invariants.
#include <cstdio>

#include "harness.h"
#include "modelcheck/checker.h"

using namespace redplane;

int main() {
  std::printf("=== Protocol model checking (TLA+ spec, C++ port) ===\n");
  std::printf("Invariants: SingleOwnerInvariant (at most one active lease, "
              "held by the store's owner,\nnever outliving the store's), "
              "durability (acked seq <= store seq), AtLeastOneAliveSwitch.\n");
  std::printf("Plus bounded liveness: a state with all packets processed "
              "and released is reachable.\n\n");

  struct Case {
    const char* name;
    modelcheck::CheckerConfig config;
  };
  std::vector<Case> cases;
  {
    modelcheck::CheckerConfig c;
    c.num_switches = 1;
    c.total_packets = 4;
    c.allow_failures = false;
    c.allow_drops = false;
    cases.push_back({"1 switch, reliable, no failures", c});
  }
  {
    modelcheck::CheckerConfig c;
    c.num_switches = 1;
    c.total_packets = 3;
    cases.push_back({"1 switch, drops + failures", c});
  }
  {
    modelcheck::CheckerConfig c;
    c.num_switches = 2;
    c.total_packets = 3;
    c.max_inflight = 3;
    c.allow_failures = false;
    cases.push_back({"2 switches, drops, no failures", c});
  }
  {
    modelcheck::CheckerConfig c;
    c.num_switches = 2;
    c.total_packets = 2;
    c.max_inflight = 3;
    cases.push_back({"2 switches, drops + failures", c});
  }
  {
    modelcheck::CheckerConfig c;
    c.num_switches = 3;
    c.total_packets = 2;
    c.max_inflight = 3;
    cases.push_back({"3 switches, drops + failures", c});
  }
  {
    modelcheck::CheckerConfig c;
    c.num_switches = 2;
    c.total_packets = 2;
    c.lease_period = 3;
    cases.push_back({"2 switches, longer lease", c});
  }

  bench::TablePrinter table(
      {"Configuration", "States", "Transitions", "Safe", "Goal reachable"});
  bool all_ok = true;
  for (const auto& c : cases) {
    const auto result = modelcheck::CheckProtocol(c.config);
    all_ok = all_ok && result.ok;
    table.Row({c.name, std::to_string(result.states_explored),
               std::to_string(result.transitions),
               result.ok ? "yes" : ("VIOLATION: " + result.violation),
               result.goal_reachable ? "yes" : "no"});
  }
  std::printf("\n%s\n", all_ok
                            ? "All configurations verified: the protocol "
                              "provides per-flow linearizability under "
                              "reordering, loss, and fail-stop failures."
                            : "VIOLATIONS FOUND — see above.");
  return all_ok ? 0 : 1;
}
