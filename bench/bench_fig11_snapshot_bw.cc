// Fig. 11: bandwidth consumed by periodic snapshot replication, vs snapshot
// frequency (32-1024 Hz) and sketch count (3/4/5), for the heavy-hitter
// detector (64 slots per sketch).
//
// Measured packet-level on the testbed (counting actual protocol bytes the
// switch emits), cross-checked against the closed-form model.  The paper
// reports 34.16 Mbps at 1 kHz with 3 sketches.
#include <cstdio>

#include "harness.h"

using namespace redplane;

namespace {

/// Runs snapshot replication for `duration` and returns the measured
/// protocol bandwidth in Mbps.
double MeasureSnapshotBandwidth(int num_sketches, double frequency_hz,
                                bench::ObsSession* obs = nullptr) {
  bench::Deployment deploy;
  deploy.Build();

  apps::HeavyHitterConfig hh_config;
  hh_config.vlans = {1};
  hh_config.sketch_rows = static_cast<std::size_t>(num_sketches);
  hh_config.sketch_slots = 64;
  apps::HeavyHitterApp hh(hh_config);

  core::RedPlaneConfig rp_config;
  rp_config.linearizable = false;
  rp_config.snapshot_period =
      static_cast<SimDuration>(1e9 / frequency_hz);
  deploy.DeployRedPlane(hh, rp_config);
  deploy.redplane(0)->StartSnapshotReplication(hh);

  const SimDuration duration = Milliseconds(200);
  if (obs != nullptr) {
    obs->AttachTracer(deploy.sim());
    obs->Watch(deploy.redplane(0)->stats());
    for (auto* server : deploy.testbed().store) obs->Watch(server->counters());
    obs->StartSampling(deploy.sim(), obs->metrics_period(), duration);
  }
  deploy.sim().RunUntil(duration);
  // Count replication requests (the paper's replication-message bandwidth;
  // acks are accounted by the Fig. 10 experiment).
  const double bytes = deploy.redplane(0)->protocol_request_bytes();
  if (obs != nullptr) {
    obs->UnwatchAll();
    obs->DetachTracer();
  }
  return bytes * 8.0 / ToSeconds(duration) / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs(argc, argv);
  std::printf("=== Fig. 11: snapshot replication bandwidth ===\n");
  std::printf("(heavy-hitter detector, 64x32-bit slots per sketch; measured "
              "request+response bytes)\n\n");
  bench::TablePrinter table({"Frequency (Hz)", "3 sketches (Mbps)",
                             "4 sketches (Mbps)", "5 sketches (Mbps)"});
  for (double hz : {32.0, 64.0, 128.0, 256.0, 512.0, 1024.0}) {
    std::vector<std::string> row{FormatDouble(hz, 0)};
    for (int sketches : {3, 4, 5}) {
      // Instrument the paper's headline operating point (1 kHz, 3 sketches).
      bench::ObsSession* obs_ptr =
          obs.enabled() && hz == 1024.0 && sketches == 3 ? &obs : nullptr;
      row.push_back(
          FormatDouble(MeasureSnapshotBandwidth(sketches, hz, obs_ptr), 2));
    }
    table.Row(row);
  }
  obs.Finish();
  std::printf("\nPaper anchor: ~34 Mbps at 1 kHz with 3 sketches; bandwidth "
              "scales linearly with frequency and\nsub-linearly with sketch "
              "count (one message per slot carries one value per sketch).\n");
  return 0;
}
