// Fig. 8: end-to-end RTT distribution for a NAT under six implementations:
//   Switch-NAT            — in-switch, no fault tolerance
//   FT Switch-NAT w/ctrl  — in-switch, state committed to an external
//                           controller over the management network
//   RedPlane-NAT          — in-switch, RedPlane state store (chain of 3)
//   Server-NAT            — software NAT on a commodity server
//   FT Server-NAT         — software NAT with synchronous replication
//   FTMB-NAT (reported)   — constants from the FTMB paper, as in the
//                           original evaluation (no implementation exists)
//
// Workload: a synthetic DC-like trace (heavy-tailed flow popularity, mixed
// packet sizes) probed for RTT; internal rack servers talk to an external
// echo host through the NAT.  Probing is failure-free (the paper's §7.1).
#include <cstdio>

#include "harness.h"

using namespace redplane;
using namespace redplane::bench;

namespace {

enum class Variant {
  kSwitchNat,
  kControllerFtNat,
  kRedPlaneNat,
  kServerNat,
  kFtServerNat,
};

constexpr std::size_t kPackets = 100'000;
constexpr std::size_t kFlows = 2'000;

routing::TestbedConfig LatencyTestbedConfig() {
  routing::TestbedConfig config;
  // Calibration to the testbed's measured medians (see EXPERIMENTS.md):
  // sub-microsecond fabric hops, ~60 us control-plane table installs.
  config.fabric_link.propagation = Nanoseconds(500);
  config.host_link.propagation = Nanoseconds(500);
  config.store.service_time = Microseconds(2);
  return config;
}

SampleSet RunNatVariant(Variant variant, ObsSession* obs) {
  Deployment deploy;
  routing::TestbedConfig config = LatencyTestbedConfig();
  apps::NatGlobalState store_pool(kNatIp, 5000, 4096, kInternalPrefix,
                                  kInternalMask);
  if (variant == Variant::kRedPlaneNat) {
    config.store.initializer = [&store_pool](const net::PartitionKey& key) {
      return store_pool.InitializeFlow(key);
    };
  }
  deploy.Build(config);
  auto& tb = deploy.testbed();
  auto& sim = deploy.sim();

  // Single-switch measurement (failure-free): disable agg1 so both
  // directions of every flow cross the same NAT instance.
  routing::FailureInjector injector(sim, *tb.fabric);
  injector.FailNode(tb.agg[1]);
  deploy.AnycastToAgg(kNatIp, 0);
  sim.RunUntil(Seconds(1));  // let routing settle

  apps::NatGlobalState local_pool(kNatIp, 5000, 4096, kInternalPrefix,
                                  kInternalMask);
  apps::NatApp nat(variant == Variant::kRedPlaneNat ? store_pool : local_pool);
  auto initializer = [&local_pool](const net::PartitionKey& key) {
    return local_pool.InitializeFlow(key);
  };

  baselines::ControllerNode* controller = nullptr;
  std::unique_ptr<baselines::ControllerFtPipeline> controller_pipeline;
  baselines::ServerNfNode* nf = nullptr;

  switch (variant) {
    case Variant::kSwitchNat:
      deploy.DeployPlain(nat, initializer);
      break;
    case Variant::kControllerFtNat: {
      // Controller reached over a 1 Gbps management network; itself chain
      // replicated (commit latency covers the controller-side chain).
      controller = tb.network->AddNode<baselines::ControllerNode>(
          "controller", Microseconds(35));
      controller_pipeline = std::make_unique<baselines::ControllerFtPipeline>(
          *tb.agg[0], nat, *controller, Microseconds(45), initializer);
      tb.agg[0]->SetPipeline(controller_pipeline.get());
      break;
    }
    case Variant::kRedPlaneNat: {
      core::RedPlaneConfig rp;
      deploy.DeployRedPlane(nat, rp);
      if (obs != nullptr) {
        // Trace/sample only the RedPlane variant: that is the system under
        // study, and attaching after routing settles keeps the trace focused
        // on protocol traffic.
        obs->AttachTracer(sim);
        obs->Watch(deploy.redplane(0)->stats());
        for (auto* server : tb.store) obs->Watch(server->counters());
        obs->StartSampling(sim, obs->metrics_period(), Seconds(4));
      }
      break;
    }
    case Variant::kServerNat:
    case Variant::kFtServerNat: {
      baselines::ServerNfConfig nf_config;
      // Kernel-stack NAT: deep per-packet latency (~20 us each way through
      // the stack) but enough CPU headroom not to queue at this offered
      // load — the paper's server NATs are latency-bound, not
      // throughput-bound, at the probe rate.
      nf_config.service_time = Microseconds(2);
      nf_config.nic_latency = Microseconds(20);
      if (variant == Variant::kFtServerNat) {
        nf_config.replication_latency = Microseconds(30);
      }
      nf = tb.network->AddNode<baselines::ServerNfNode>(
          "nf", net::Ipv4Addr(172, 16, 3, 1), nat, nf_config, initializer);
      // NF server hangs off the aggregation switch; steer app traffic
      // through it (explicit routing, as software LB deployments do).
      const PortId nf_port = static_cast<PortId>(tb.agg[0]->NumPorts());
      tb.network->Connect(nf, 0, tb.agg[0], nf_port, config.host_link);
      tb.fabric->RecomputeNow();
      auto* fabric = tb.fabric.get();
      auto* agg0 = tb.agg[0];
      agg0->SetForwarder([fabric, agg0, nf_port](const net::Packet& pkt,
                                                 PortId in_port)
                             -> std::optional<PortId> {
        const bool is_app_traffic =
            pkt.udp.has_value() &&
            (pkt.udp->dst_port == 80 || pkt.udp->src_port == 80);
        if (is_app_traffic && in_port != nf_port) return nf_port;
        return fabric->NextHop(agg0, pkt);
      });
      break;
    }
  }

  // Probe: internal rack server -> external echo host, DC-like trace.
  RttProbe probe(tb.rack_servers[0][0]);
  InstallEcho(tb.external[0]);
  Rng rng(1234);
  trace::FlowMixConfig mix;
  mix.num_packets = kPackets;
  mix.num_flows = kFlows;
  mix.src_base = routing::RackServerIp(0, 0);
  mix.dst_base = routing::ExternalHostIp(0);
  mix.dst_port = 80;
  mix.proto = net::IpProto::kUdp;
  mix.mean_interarrival = Microseconds(10);
  auto packets = trace::GenerateFlowMix(rng, mix);
  ShapeFlowChurn(packets, Microseconds(450));  // ~2.2k new flows/s churn
  const SimTime start = sim.Now();
  for (const auto& spec : packets) {
    net::FlowKey flow = spec.flow;
    flow.src_ip = routing::RackServerIp(0, 0);  // one probing host
    flow.dst_ip = routing::ExternalHostIp(0);
    const std::uint32_t pad =
        spec.size_bytes > 62 ? spec.size_bytes - 62 : 8;
    sim.ScheduleAt(start + spec.time,
                   [&probe, flow, pad]() { probe.Send(flow, pad); });
  }
  sim.Run();
  if (obs != nullptr && variant == Variant::kRedPlaneNat) {
    obs->SampleOnce(sim.Now());
    // The hub and tracer hold non-owning references into this run's
    // deployment; release them before it is destroyed.
    obs->UnwatchAll();
    obs->DetachTracer();
  }
  return std::move(probe.rtt_us());
}

}  // namespace

int main(int argc, char** argv) {
  ObsSession obs(argc, argv);
  std::printf("=== Fig. 8: end-to-end RTT, NAT implementations ===\n");
  std::printf("(%zu probe packets, %zu flows, DC-like trace, failure-free)\n\n",
              kPackets, kFlows);

  struct Row {
    const char* name;
    Variant variant;
  };
  const Row rows[] = {
      {"Switch-NAT", Variant::kSwitchNat},
      {"FT Switch-NAT w/ controller", Variant::kControllerFtNat},
      {"RedPlane-NAT", Variant::kRedPlaneNat},
      {"Server-NAT", Variant::kServerNat},
      {"FT Server-NAT", Variant::kFtServerNat},
  };
  std::vector<std::pair<std::string, SampleSet>> results;
  for (const Row& row : rows) {
    results.emplace_back(row.name,
                         RunNatVariant(row.variant, obs.enabled() ? &obs : nullptr));
  }
  for (auto& [name, samples] : results) {
    PrintLatencySummary(name, samples);
  }
  // FTMB numbers are taken from the FTMB paper, exactly as the RedPlane
  // authors did ("we use the latency reported in the original FTMB paper").
  std::printf("%-28s  p50=%8.1f us  p90=%8.1f us  p99=%8.1f us  (reported)\n",
              "FTMB-NAT (reported)", 100.0, 300.0, 1000.0);
  std::printf("\nPaper anchors: Switch-NAT and RedPlane-NAT share p50/p90 "
              "(7/8 us); their p99s are 110 and 142 us\n(control-plane "
              "installs; RedPlane adds the lease round trip); controller-FT "
              "p99 ~185 us;\nserver variants are 7-14x higher at the "
              "median.\n\n");
  for (auto& [name, samples] : results) {
    PrintCdf(name, samples);
  }
  obs.Finish();
  return 0;
}
