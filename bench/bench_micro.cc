// Microbenchmarks (google-benchmark): the per-packet primitives on the hot
// paths of the simulator and the RedPlane protocol.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "apps/sketch.h"
#include "audit/auditor.h"
#include "audit/taps.h"
#include "core/protocol.h"
#include "core/snapshot.h"
#include "dataplane/register_array.h"
#include "core/app.h"
#include "core/consistency.h"
#include "net/buffer.h"
#include "net/codec.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "core/flow_table.h"
#include "dataplane/mirror.h"
#include "sim/simulator.h"
#include "sim/timer_wheel.h"

// Process-wide heap-allocation counter, used to prove the steady-state event
// dispatch path allocates nothing (BM_EventDispatchSteadyState).
static std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace redplane;

namespace {

net::Packet SamplePacket() {
  net::FlowKey f{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(192, 168, 10, 1),
                 4321, 1234, net::IpProto::kTcp};
  return net::MakeTcpPacket(f, net::TcpFlags::kAck, 42, 43, 512);
}

void BM_PacketSerialize(benchmark::State& state) {
  const net::Packet pkt = SamplePacket();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Serialize(pkt));
  }
}
BENCHMARK(BM_PacketSerialize);

void BM_PacketParse(benchmark::State& state) {
  const auto wire = net::Serialize(SamplePacket());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Parse(wire));
  }
}
BENCHMARK(BM_PacketParse);

void BM_ProtocolEncode(benchmark::State& state) {
  core::Msg msg;
  msg.type = core::MsgType::kLeaseRenewReq;
  msg.key = net::PartitionKey::OfFlow(*SamplePacket().Flow());
  msg.seq = 42;
  msg.state.resize(16);
  msg.piggyback = SamplePacket();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeMsg(msg));
  }
}
BENCHMARK(BM_ProtocolEncode);

void BM_ProtocolDecode(benchmark::State& state) {
  core::Msg msg;
  msg.type = core::MsgType::kLeaseRenewReq;
  msg.key = net::PartitionKey::OfFlow(*SamplePacket().Flow());
  msg.state.resize(16);
  msg.piggyback = SamplePacket();
  const auto bytes = core::EncodeMsg(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DecodeMsg(bytes));
  }
}
BENCHMARK(BM_ProtocolDecode);

void BM_FlowKeyHash(benchmark::State& state) {
  const auto flow = *SamplePacket().Flow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::HashFlowKey(flow));
  }
}
BENCHMARK(BM_FlowKeyHash);

void BM_SketchUpdate(benchmark::State& state) {
  apps::CountMinSketch sketch("bm", 3, 64);
  std::uint64_t key = 0;
  for (auto _ : state) {
    dp::PipelinePass pass;
    benchmark::DoNotOptimize(sketch.Update(pass, ++key, 1));
  }
}
BENCHMARK(BM_SketchUpdate);

void BM_LazySnapshotUpdate(benchmark::State& state) {
  core::LazySnapshotter<std::uint32_t> snap("bm", 64);
  std::size_t i = 0;
  for (auto _ : state) {
    dp::PipelinePass pass;
    benchmark::DoNotOptimize(
        snap.Update(pass, i++ % 64, [](std::uint32_t v) { return v + 1; }));
  }
}
BENCHMARK(BM_LazySnapshotUpdate);

// --- Zero-copy message core ------------------------------------------------

// Hop-to-hop packet forwarding: copying a queued packet is a refcount bump on
// the shared payload buffer, not a memcpy of the bytes.
void BM_LinkHopForward(benchmark::State& state) {
  net::Packet pkt = SamplePacket();
  std::vector<std::byte> body(512, std::byte{0xAB});
  pkt.payload = std::move(body);
  for (auto _ : state) {
    net::Packet hop = pkt;  // what each link/pipeline hop does
    benchmark::DoNotOptimize(hop.payload.data());
  }
}
BENCHMARK(BM_LinkHopForward);

// The same hop with the pre-zero-copy payload representation (a value
// vector): every hop memcpys the body.
void BM_LinkHopForwardDeepCopy(benchmark::State& state) {
  net::Packet pkt = SamplePacket();
  std::vector<std::byte> body(512, std::byte{0xAB});
  for (auto _ : state) {
    net::Packet hop = pkt;
    std::vector<std::byte> copied = body;  // what a value payload cost
    hop.payload = std::move(copied);
    benchmark::DoNotOptimize(hop.payload.data());
  }
}
BENCHMARK(BM_LinkHopForwardDeepCopy);

core::Msg SampleChainMsg() {
  core::Msg msg;
  msg.type = core::MsgType::kLeaseRenewReq;
  msg.key = net::PartitionKey::OfFlow(*SamplePacket().Flow());
  msg.seq = 42;
  msg.state.resize(16);
  msg.piggyback = SamplePacket();
  return msg;
}

// A chain replica's per-hop work, zero-copy style: parse a view over the
// received bytes, patch the mutable header field in place, hand the same
// buffer to the successor.
void BM_ChainHopForwardZeroCopy(benchmark::State& state) {
  net::BufferView payload{core::EncodeMsg(SampleChainMsg())};
  for (auto _ : state) {
    auto v = core::MsgView::Parse(std::move(payload));
    v->SetChainHop(static_cast<std::uint8_t>(v->chain_hop() + 1));
    payload = v->bytes();  // "send": the buffer moves on unchanged
    benchmark::DoNotOptimize(payload.data());
  }
}
BENCHMARK(BM_ChainHopForwardZeroCopy);

// The same hop the way the code did it before the zero-copy core: fully
// decode the message (materializing state + piggyback), bump the hop count,
// and re-encode everything.
void BM_ChainHopReencode(benchmark::State& state) {
  const net::Buffer payload = core::EncodeMsg(SampleChainMsg());
  for (auto _ : state) {
    auto msg = core::DecodeMsg(payload);
    msg->chain_hop = static_cast<std::uint8_t>(msg->chain_hop + 1);
    benchmark::DoNotOptimize(core::EncodeMsg(*msg));
  }
}
BENCHMARK(BM_ChainHopReencode);

// Wrapping N already-encoded requests into one batch envelope (DESIGN.md
// §10): one length-prefixed memcpy per sub-message, no re-serialization of
// headers, state, or piggybacked packets.
void BM_BatchEncode(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<net::BufferView> subs;
  for (std::size_t i = 0; i < n; ++i) {
    core::Msg msg = SampleChainMsg();
    msg.seq = 42 + i;
    subs.emplace_back(core::EncodeMsg(msg));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::EncodeBatchEnvelope(subs).data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchEncode)->Arg(4)->Arg(16);

// A pure chain replica's per-envelope work: parse the envelope, view every
// sub-message in place, and hand the same received bytes to the successor —
// the envelope is never rebuilt and no sub-message is copied or re-encoded.
void BM_BatchChainHop(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<net::BufferView> subs;
  for (std::size_t i = 0; i < n; ++i) {
    core::Msg msg = SampleChainMsg();
    msg.seq = 42 + i;
    msg.chain_hop = 1;  // head-decided
    subs.emplace_back(core::EncodeMsg(msg));
  }
  const net::BufferView frame = net::EncodeBatchEnvelope(subs);
  for (auto _ : state) {
    auto batch = net::BatchView::Parse(frame);
    std::uint64_t applied = 0;
    for (std::size_t i = 0; i < batch->size(); ++i) {
      auto v = core::MsgView::Parse(batch->at(i));
      applied += v->seq();  // stand-in for the local apply
    }
    benchmark::DoNotOptimize(applied);
    benchmark::DoNotOptimize(frame.data());  // "send": same bytes move on
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BatchChainHop)->Arg(4)->Arg(16);

// Steady-state event dispatch: after warm-up the slab free list satisfies
// every Schedule and the inline callable storage absorbs the lambda, so one
// schedule+dispatch round trip performs zero heap allocations.
void BM_EventDispatchSteadyState(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 64; ++i) {
    sim.Schedule(i, [&fired]() { ++fired; });
  }
  sim.Run();  // warm the slab, the queue and the free list
  const std::uint64_t allocs_before =
      g_heap_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    sim.Schedule(1, [&fired]() { ++fired; });
    sim.Run();
  }
  const std::uint64_t allocs_after =
      g_heap_allocs.load(std::memory_order_relaxed);
  benchmark::DoNotOptimize(fired);
  state.counters["heap_allocs_per_dispatch"] = benchmark::Counter(
      static_cast<double>(allocs_after - allocs_before) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_EventDispatchSteadyState);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [&fired]() { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);


// --- Timing wheel and SoA table primitives ----------------------------------

// O(1) schedule into the hierarchical wheel, across all levels (the delay
// sweeps from one tick to days of simulated time).
void BM_TimerWheelSchedule(benchmark::State& state) {
  sim::TimerWheel wheel;
  std::vector<sim::TimerWheel::Due> drained;
  std::uint64_t seq = 1;
  SimTime t = 2048;  // monotonic: always ahead of the cursor
  std::size_t scheduled = 0;
  for (auto _ : state) {
    wheel.Schedule(t, seq++, 0);
    // Sweep levels 0-3: steps from one tick up to ~2^30 ns.
    t += SimTime(1) << (10 + (seq % 20));
    if (++scheduled == 4096) {
      state.PauseTiming();
      drained.clear();
      wheel.DrainAll(drained);
      scheduled = 0;
      state.ResumeTiming();
    }
  }
  benchmark::DoNotOptimize(wheel.Size());
}
BENCHMARK(BM_TimerWheelSchedule);

// Advance: pop every due slot of a 4096-timer wheel (amortized cascade +
// bitmap scan per slot).
void BM_TimerWheelAdvance(benchmark::State& state) {
  sim::TimerWheel wheel;
  std::vector<sim::TimerWheel::Due> due;
  std::uint64_t seq = 1;
  SimTime base = 0;  // advances past the cursor on every refill
  std::size_t popped = 0;
  for (auto _ : state) {
    if (wheel.Empty()) {
      state.PauseTiming();
      base += 4096 * 131072;
      for (std::uint64_t i = 0; i < 4096; ++i) {
        wheel.Schedule(base + static_cast<SimTime>(i) * 131072, seq++, 0);
      }
      state.ResumeTiming();
    }
    due.clear();
    wheel.PopNextSlot(due);
    popped += due.size();
  }
  benchmark::DoNotOptimize(popped);
  state.SetItemsProcessed(static_cast<std::int64_t>(popped));
}
BENCHMARK(BM_TimerWheelAdvance);

// O(1) cancel via the (idx, seq) slot handle — the ack path's operation.
void BM_TimerWheelCancel(benchmark::State& state) {
  sim::TimerWheel wheel;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> handles;
  std::size_t next = 0;
  std::uint64_t seq = 1;
  SimTime base = 4096;  // cancels never move the cursor, but stay ahead
  for (auto _ : state) {
    if (next == handles.size()) {
      state.PauseTiming();
      handles.clear();
      base += 4096;
      for (int i = 0; i < 4096; ++i, ++seq) {
        const SimTime t = base + (SimTime(i % 24) << 12);
        handles.emplace_back(wheel.Schedule(t, seq, 0), seq);
      }
      next = 0;
      state.ResumeTiming();
    }
    std::uint32_t payload;
    wheel.Cancel(handles[next].first, handles[next].second, &payload);
    ++next;
  }
  benchmark::DoNotOptimize(wheel.Size());
}
BENCHMARK(BM_TimerWheelCancel);

// Per-packet flow lookup against the open-addressed SoA table: digest probe
// + one key compare + one hot-lane read.
void BM_FlowTableLookup(benchmark::State& state) {
  core::FlowTable table;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint32_t slot =
        table.GetOrCreateSlot(net::PartitionKey::OfObject(i));
    table.set_status(slot, core::FlowStatus::kActive);
    table.set_lease_expiry(slot, Seconds(10));
  }
  std::uint64_t i = 0;
  std::uint64_t live = 0;
  for (auto _ : state) {
    const std::uint32_t slot =
        table.FindSlot(net::PartitionKey::OfObject(i % n));
    live += table.LeaseActive(slot, Seconds(1)) ? 1 : 0;
    i += 7919;  // stride co-prime with n: spread probes across the index
  }
  benchmark::DoNotOptimize(live);
}
BENCHMARK(BM_FlowTableLookup)->Arg(10240)->Arg(1 << 20);

// --- Consistency-policy single-owner A/B (DESIGN.md §14) -------------------
//
// The pluggable ConsistencyPolicy layer must not tax the default mode.  Both
// benches run the same single-owner per-packet sequencing core: flow lookup,
// lease check, seq bump on writes, writes-in-flight check on reads (a
// quarter of the flows have an un-acked write pending, so the contended-read
// branch is exercised).  The "Inline" twin is the pre-refactor shape with
// the single-owner decisions hard-wired; the "Policy" twin consults the
// resolved policy object exactly the way RedPlaneSwitch does — a cached mode
// enum branched per packet, plus the AllowLocalRead virtual call on the
// contended-read path.  ci/perf_smoke.py gates the pair at 2%.

namespace {

constexpr std::uint64_t kSeqFlows = 1024;

void FillSequencingTable(core::FlowTable& table) {
  for (std::uint64_t i = 0; i < kSeqFlows; ++i) {
    const std::uint32_t slot =
        table.GetOrCreateSlot(net::PartitionKey::OfObject(i));
    table.set_status(slot, core::FlowStatus::kActive);
    table.set_lease_expiry(slot, Seconds(10));
    if ((i & 3) == 0) {
      // An un-acked write: reads on this flow hit the in-flight branch.
      table.NoteSend(slot, 1, Seconds(0), Seconds(100));
    }
  }
}

}  // namespace

void BM_SingleOwnerSequencingInline(benchmark::State& state) {
  core::FlowTable table;
  FillSequencingTable(table);
  std::uint64_t i = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint32_t slot =
        table.FindSlot(net::PartitionKey::OfObject(i % kSeqFlows));
    if (table.LeaseActive(slot, Seconds(1))) {
      if ((i & 1) != 0) {  // write: bump the sequence (Sync-Counter shape)
        acc += table.NextSeq(slot);
      } else if (table.WritesInFlight(slot)) {
        acc += table.cur_seq(slot);  // read buffers behind the write
      } else {
        ++acc;  // read releases immediately
      }
    }
    i += 7919;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SingleOwnerSequencingInline);

void BM_SingleOwnerSequencingPolicy(benchmark::State& state) {
  core::FlowTable table;
  FillSequencingTable(table);
  core::StateTraits traits;  // defaults to single-owner
  const auto policy = core::ConsistencyPolicy::Make(traits);
  const core::ConsistencyMode mode = policy->mode();
  std::uint64_t i = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const std::uint32_t slot =
        table.FindSlot(net::PartitionKey::OfObject(i % kSeqFlows));
    if (mode == core::ConsistencyMode::kMergeable) {
      ++acc;  // never taken under single-owner; the branch is the cost
    } else if (table.LeaseActive(slot, Seconds(1))) {
      if ((i & 1) != 0) {
        acc += table.NextSeq(slot);
      } else if (table.WritesInFlight(slot)) {
        if (mode == core::ConsistencyMode::kReplicatedRead &&
            policy->AllowLocalRead(0)) {
          ++acc;
        } else {
          acc += table.cur_seq(slot);
        }
      } else {
        ++acc;
      }
    }
    i += 7919;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SingleOwnerSequencingPolicy);

namespace {

/// Builds a mirror table with `n` live entries enqueued at distinct times.
void FillMirror(dp::MirrorTable& mirror, std::uint64_t n) {
  std::vector<std::byte> payload(64);
  for (std::uint64_t i = 0; i < n; ++i) {
    mirror.Mirror(net::PartitionKey::OfObject(i), 1,
                  net::BufferView(std::vector<std::byte>(payload)),
                  static_cast<SimTime>(i));
  }
}

}  // namespace

// The retired design's per-tick cost: walk the WHOLE mirror table comparing
// each entry's last-send time against the timeout — O(table size) even when
// nothing is due.  Kept as the before-twin of BM_MirrorDueScan.
void BM_MirrorFullScan(benchmark::State& state) {
  dp::MirrorTable mirror("bench", 128);
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  FillMirror(mirror, n);
  const SimTime now = static_cast<SimTime>(n / 2);
  std::size_t due = 0;
  for (auto _ : state) {
    mirror.ForEach([&](dp::MirrorTable::Handle h) {
      if (now - mirror.last_sent_at(h) >= 0) ++due;
    });
  }
  benchmark::DoNotOptimize(due);
}
BENCHMARK(BM_MirrorFullScan)->Arg(10240)->Arg(1 << 20);

// The replacement's per-tick cost: with every entry holding its own wheel
// timer, finding the due set costs O(due entries), independent of how many
// non-due entries sit in the table.  A small rotating set keeps firing
// while `n` timers stay parked — perf_smoke.py guards that time/item at
// n = 1M stays within 10% of n = 10k.
void BM_MirrorDueScan(benchmark::State& state) {
  sim::TimerWheel wheel;
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  // The parked majority: deadlines far beyond the cursor's travel during
  // the measured loop (~4 ticks per pop), so they never fire or cascade —
  // exactly the "not currently due" retransmit population.
  for (std::uint64_t i = 0; i < n; ++i) {
    wheel.Schedule((SimTime(1) << 45) + static_cast<SimTime>(i) * 1024,
                   n + i, 0);
  }
  // The rotating due set: 64 entries near the cursor that keep re-arming
  // ahead of it, modeling the handful of unacked requests whose timers fire.
  std::uint64_t seq = 1;
  for (std::uint64_t i = 0; i < 64; ++i) {
    wheel.Schedule(SimTime(2048) + SimTime(i) * 4096, seq++, 0);
  }
  std::vector<sim::TimerWheel::Due> due;
  std::size_t fired = 0;
  for (auto _ : state) {
    due.clear();
    wheel.PopNextSlot(due);
    for (const auto& d : due) {
      // Re-arm, as the retransmit path does, staying well below the parked
      // set's deadlines.
      wheel.Schedule(d.time + 64 * 4096, seq++, 0);
      ++fired;
    }
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_MirrorDueScan)->Arg(10240)->Arg(1 << 20);

// --- Online auditor overhead -----------------------------------------------

// Hop forwarding with the auditor armed (standard monitors installed, no
// violations).  Hop paths carry only the armed() guard — taps publish
// protocol milestones (lease grant, store apply, ack release), never
// per-hop facts — so the armed cost on a hop is one global load and a
// predictable branch.  ci/perf_smoke.py holds this within 5% of
// BM_LinkHopForward.
void BM_LinkHopForwardAuditorArmed(benchmark::State& state) {
  audit::Auditor auditor;
  auditor.ArmStandardMonitors();
  auditor.SetEnabled(true);
  audit::Auditor* prev = audit::SetGlobalAuditor(&auditor);
  audit::TapHandle tap("bench-hop");
  net::Packet pkt = SamplePacket();
  std::vector<std::byte> body(512, std::byte{0xAB});
  pkt.payload = std::move(body);
  for (auto _ : state) {
    net::Packet hop = pkt;
    if (tap.armed()) benchmark::DoNotOptimize(&tap);
    benchmark::DoNotOptimize(hop.payload.data());
  }
  audit::SetGlobalAuditor(prev);
}
BENCHMARK(BM_LinkHopForwardAuditorArmed);

// Chain-replica hop with the auditor armed: same in-place patch-and-forward
// as BM_ChainHopForwardZeroCopy plus the armed guard.  Held within 5% of the
// unarmed bench by ci/perf_smoke.py.
void BM_ChainHopForwardAuditorArmed(benchmark::State& state) {
  audit::Auditor auditor;
  auditor.ArmStandardMonitors();
  auditor.SetEnabled(true);
  audit::Auditor* prev = audit::SetGlobalAuditor(&auditor);
  audit::TapHandle tap("bench-chain");
  net::BufferView payload{core::EncodeMsg(SampleChainMsg())};
  for (auto _ : state) {
    auto v = core::MsgView::Parse(std::move(payload));
    v->SetChainHop(static_cast<std::uint8_t>(v->chain_hop() + 1));
    payload = v->bytes();
    if (tap.armed()) benchmark::DoNotOptimize(&tap);
    benchmark::DoNotOptimize(payload.data());
  }
  audit::SetGlobalAuditor(prev);
}
BENCHMARK(BM_ChainHopForwardAuditorArmed);

// Hop forwarding with the profiler armed: a stride-256 ProfScope on the hop
// (the discipline per-packet sites like net.serialize use), so 255 of 256
// entries cost one countdown decrement and the 256th pays the two clock
// reads.  ci/perf_smoke.py holds this within 5% of BM_LinkHopForward.
void BM_LinkHopForwardProfilerArmed(benchmark::State& state) {
  obs::Profiler profiler;
  profiler.SetEnabled(true);
  obs::Profiler* prev = obs::SetGlobalProfiler(&profiler);
  static obs::ProfSite site("bench.hop", /*stride=*/256);
  net::Packet pkt = SamplePacket();
  std::vector<std::byte> body(512, std::byte{0xAB});
  pkt.payload = std::move(body);
  for (auto _ : state) {
    obs::ProfScope prof(site);
    net::Packet hop = pkt;
    benchmark::DoNotOptimize(hop.payload.data());
  }
  obs::SetGlobalProfiler(prev);
}
BENCHMARK(BM_LinkHopForwardProfilerArmed);

// Chain-replica hop with the profiler armed: same patch-and-forward as
// BM_ChainHopForwardZeroCopy under a sampled ProfScope.  Held within 5% of
// the unarmed bench by ci/perf_smoke.py.
void BM_ChainHopForwardProfilerArmed(benchmark::State& state) {
  obs::Profiler profiler;
  profiler.SetEnabled(true);
  obs::Profiler* prev = obs::SetGlobalProfiler(&profiler);
  static obs::ProfSite site("bench.chain_hop", /*stride=*/256);
  net::BufferView payload{core::EncodeMsg(SampleChainMsg())};
  for (auto _ : state) {
    obs::ProfScope prof(site);
    auto v = core::MsgView::Parse(std::move(payload));
    v->SetChainHop(static_cast<std::uint8_t>(v->chain_hop() + 1));
    payload = v->bytes();
    benchmark::DoNotOptimize(payload.data());
  }
  obs::SetGlobalProfiler(prev);
}
BENCHMARK(BM_ChainHopForwardProfilerArmed);

// A full milestone publish: one Emit dispatched synchronously through all
// four standard monitors.  Same-component lease renewals never violate, so
// this is the steady-state (silent) per-milestone cost.
void BM_AuditTapDispatch(benchmark::State& state) {
  audit::Auditor auditor;
  auditor.ArmStandardMonitors();
  auditor.SetEnabled(true);
  audit::Auditor* prev = audit::SetGlobalAuditor(&auditor);
  audit::TapHandle tap("bench-switch");
  for (auto _ : state) {
    if (tap.armed()) {
      tap.Emit(audit::Tap::kLeaseAcquired, 0xabcdef0123456789ull, 0,
               /*aux=believed expiry*/ 1'000'000'000ull);
    }
  }
  benchmark::DoNotOptimize(auditor.events_seen());
  audit::SetGlobalAuditor(prev);
}
BENCHMARK(BM_AuditTapDispatch);

// --- Observability-layer overhead -----------------------------------------

// The default state: no tracer attached / tracing disabled.  A TraceHandle
// emit must cost no more than a couple of loads and a predictable branch.
void BM_TraceEmitDisabled(benchmark::State& state) {
  obs::TraceHandle handle("bench");
  for (auto _ : state) {
    if (handle.armed()) {
      handle.Emit(obs::Ev::kIngress, 0x1234, 1, 64.0);
    }
    benchmark::DoNotOptimize(&handle);
  }
}
BENCHMARK(BM_TraceEmitDisabled);

void BM_TraceEmitEnabled(benchmark::State& state) {
  obs::Tracer tracer(1u << 12);
  tracer.SetEnabled(true);
  obs::Tracer* prev = obs::SetGlobalTracer(&tracer);
  obs::TraceHandle handle("bench");
  std::uint64_t seq = 0;
  for (auto _ : state) {
    if (handle.armed()) {
      handle.Emit(obs::Ev::kIngress, 0x1234, ++seq, 64.0);
    }
  }
  benchmark::DoNotOptimize(tracer.size());
  obs::SetGlobalTracer(prev);
}
BENCHMARK(BM_TraceEmitEnabled);

// Typed handle vs the string-keyed APIs it replaced on the hot path.
void BM_MetricCounterAdd(benchmark::State& state) {
  obs::MetricRegistry registry("bench");
  obs::Counter counter = registry.RegisterCounter("pkts");
  for (auto _ : state) {
    counter.Add();
  }
  benchmark::DoNotOptimize(registry.Get("pkts"));
}
BENCHMARK(BM_MetricCounterAdd);

void BM_MetricRegistryStringAdd(benchmark::State& state) {
  obs::MetricRegistry registry("bench");
  for (auto _ : state) {
    registry.Add("pkts");
  }
  benchmark::DoNotOptimize(registry.Get("pkts"));
}
BENCHMARK(BM_MetricRegistryStringAdd);

void BM_MetricHistogramRecord(benchmark::State& state) {
  obs::MetricRegistry registry("bench");
  obs::Histogram hist = registry.RegisterHistogram("rtt_us");
  double v = 1.0;
  for (auto _ : state) {
    hist.Record(v);
    v = v < 1e6 ? v * 1.1 : 1.0;
  }
  benchmark::DoNotOptimize(hist.Count());
}
BENCHMARK(BM_MetricHistogramRecord);

}  // namespace

BENCHMARK_MAIN();
