// Microbenchmarks (google-benchmark): the per-packet primitives on the hot
// paths of the simulator and the RedPlane protocol.
#include <benchmark/benchmark.h>

#include "apps/sketch.h"
#include "core/protocol.h"
#include "core/snapshot.h"
#include "dataplane/register_array.h"
#include "net/codec.h"
#include "sim/simulator.h"

using namespace redplane;

namespace {

net::Packet SamplePacket() {
  net::FlowKey f{net::Ipv4Addr(10, 0, 0, 1), net::Ipv4Addr(192, 168, 10, 1),
                 4321, 1234, net::IpProto::kTcp};
  return net::MakeTcpPacket(f, net::TcpFlags::kAck, 42, 43, 512);
}

void BM_PacketSerialize(benchmark::State& state) {
  const net::Packet pkt = SamplePacket();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Serialize(pkt));
  }
}
BENCHMARK(BM_PacketSerialize);

void BM_PacketParse(benchmark::State& state) {
  const auto wire = net::Serialize(SamplePacket());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Parse(wire));
  }
}
BENCHMARK(BM_PacketParse);

void BM_ProtocolEncode(benchmark::State& state) {
  core::Msg msg;
  msg.type = core::MsgType::kLeaseRenewReq;
  msg.key = net::PartitionKey::OfFlow(*SamplePacket().Flow());
  msg.seq = 42;
  msg.state.resize(16);
  msg.piggyback = SamplePacket();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::EncodeMsg(msg));
  }
}
BENCHMARK(BM_ProtocolEncode);

void BM_ProtocolDecode(benchmark::State& state) {
  core::Msg msg;
  msg.type = core::MsgType::kLeaseRenewReq;
  msg.key = net::PartitionKey::OfFlow(*SamplePacket().Flow());
  msg.state.resize(16);
  msg.piggyback = SamplePacket();
  const auto bytes = core::EncodeMsg(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::DecodeMsg(bytes));
  }
}
BENCHMARK(BM_ProtocolDecode);

void BM_FlowKeyHash(benchmark::State& state) {
  const auto flow = *SamplePacket().Flow();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::HashFlowKey(flow));
  }
}
BENCHMARK(BM_FlowKeyHash);

void BM_SketchUpdate(benchmark::State& state) {
  apps::CountMinSketch sketch("bm", 3, 64);
  std::uint64_t key = 0;
  for (auto _ : state) {
    dp::PipelinePass pass;
    benchmark::DoNotOptimize(sketch.Update(pass, ++key, 1));
  }
}
BENCHMARK(BM_SketchUpdate);

void BM_LazySnapshotUpdate(benchmark::State& state) {
  core::LazySnapshotter<std::uint32_t> snap("bm", 64);
  std::size_t i = 0;
  for (auto _ : state) {
    dp::PipelinePass pass;
    benchmark::DoNotOptimize(
        snap.Update(pass, i++ % 64, [](std::uint32_t v) { return v + 1; }));
  }
}
BENCHMARK(BM_LazySnapshotUpdate);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(i, [&fired]() { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace

BENCHMARK_MAIN();
