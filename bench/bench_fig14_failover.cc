// Fig. 14: end-to-end TCP throughput across a switch failure and recovery.
//
// An iperf-like TCP flow runs through an in-switch NAT on the testbed for
// 60 seconds; the carrying aggregation switch fails at t=15 s and recovers
// at t=40 s.  Three configurations:
//   * Baseline (no failure),
//   * Failure without RedPlane — the rerouted flow hits a NAT with no
//     translation state and a switch-local port pool, so the connection's
//     identity changes and it never recovers,
//   * Failure + RedPlane — the standby switch migrates the mapping from
//     the state store and throughput recovers within about a second
//     (failure-detection delay + lease period), as in the paper.
//
// The fabric runs at 1 Gbps so a minute-long flow is tractable to simulate
// packet by packet; failover dynamics are rate-independent (the paper's
// absolute 100 Gbps plateau is a link-speed constant).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "audit/auditor.h"
#include "harness.h"
#include "obs/recovery.h"
#include "obs/timeseries.h"
#include "sim/timer_wheel.h"
#include "tcp/tcp.h"

using namespace redplane;
using namespace redplane::bench;

namespace {

constexpr SimTime kFailAt = Seconds(15);
constexpr SimTime kRecoverAt = Seconds(40);
constexpr SimTime kEnd = Seconds(60);

constexpr SimDuration kDetectionDelay = Milliseconds(400);
constexpr SimDuration kLeasePeriod = Milliseconds(500);

enum class Mode { kBaseline, kFailureNoRedPlane, kFailureRedPlane };

std::vector<double> RunTimeline(Mode mode, ObsSession* obs = nullptr,
                                obs::RecoveryTracker* tracker = nullptr,
                                const std::string& fleet_out = {}) {
  Deployment deploy;
  auto store_pool = std::make_shared<apps::NatGlobalState>(
      kNatIp, 5000, 128, kInternalPrefix, kInternalMask);
  routing::TestbedConfig config;
  config.fabric_link.bandwidth_bps = 1e9;
  config.host_link.bandwidth_bps = 1e9;
  config.store.lease_period = kLeasePeriod;
  config.fabric.failure_detection_delay = kDetectionDelay;
  config.store.initializer = [store_pool](const net::PartitionKey& key) {
    return store_pool->InitializeFlow(key);
  };
  deploy.Build(config);
  auto& tb = deploy.testbed();
  auto& sim = deploy.sim();

  apps::NatApp rp_nat(*store_pool);
  // The no-FT baseline keeps a pool per switch: after a failure the
  // survivor allocates fresh (different) mappings.
  apps::NatGlobalState local_pool0(kNatIp, 5000, 128, kInternalPrefix,
                                   kInternalMask);
  apps::NatGlobalState local_pool1(kNatIp, 6000, 128, kInternalPrefix,
                                   kInternalMask);
  apps::NatApp plain_nat0(local_pool0);
  apps::NatApp plain_nat1(local_pool1);
  std::unique_ptr<baselines::PlainAppPipeline> plain[2];

  core::RedPlaneConfig rp_config;
  rp_config.lease_period = kLeasePeriod;
  rp_config.renew_interval = kLeasePeriod / 2;
  if (mode == Mode::kFailureNoRedPlane) {
    plain[0] = std::make_unique<baselines::PlainAppPipeline>(
        *tb.agg[0], plain_nat0, [&](const net::PartitionKey& key) {
          return local_pool0.InitializeFlow(key);
        });
    plain[1] = std::make_unique<baselines::PlainAppPipeline>(
        *tb.agg[1], plain_nat1, [&](const net::PartitionKey& key) {
          return local_pool1.InitializeFlow(key);
        });
    tb.agg[0]->SetPipeline(plain[0].get());
    tb.agg[1]->SetPipeline(plain[1].get());
  } else {
    deploy.DeployRedPlane(rp_nat, rp_config);
  }
  deploy.AnycastToAgg(kNatIp, 0);

  if (obs != nullptr && mode == Mode::kFailureRedPlane) {
    obs->AttachTracer(sim);
    obs->Watch(deploy.redplane(0)->stats());
    obs->Watch(deploy.redplane(1)->stats());
    for (auto* server : tb.store) obs->Watch(server->counters());
    obs->StartSampling(sim, obs->metrics_period(), kEnd);
  }

  // Recovery forensics: a bench-local auditor feeds the protocol tap stream
  // (fault injected, routes rebuilt, lease re-acquired, first output) into
  // the episode tracker, which replaces the old "first bucket above 50%
  // goodput" recovery estimate with a causal phase decomposition.
  audit::Auditor auditor;
  obs::MetricRegistry wheel_reg("wheel");
  obs::MetricsHub fleet_hub;
  std::unique_ptr<obs::FleetSampler> fleet;
  if (tracker != nullptr && mode == Mode::kFailureRedPlane) {
    auditor.SetClock([&sim] { return sim.Now(); });
    audit::SetGlobalAuditor(&auditor);
    auditor.SetEnabled(true);
    auditor.SetTapObserver(
        [tracker](const audit::TapEvent& ev) { tracker->OnTapEvent(ev); });
    if (!fleet_out.empty()) {
      // Continuous fleet telemetry: per-second goodput / lease churn /
      // replication rates plus wheel and SoA-table occupancy, one CSV row
      // per second of the 60 s timeline.
      for (int l = 0; l <= sim::TimerWheel::kLevels; ++l) {
        const std::string gauge_name =
            l == sim::TimerWheel::kLevels ? "overflow"
                                          : "level" + std::to_string(l);
        wheel_reg.AddCallbackGauge(gauge_name, [&sim, l] {
          return static_cast<double>(
              sim.wheel().CountPerLevel()[static_cast<std::size_t>(l)]);
        });
      }
      fleet_hub.Register(&deploy.redplane(0)->stats());
      fleet_hub.Register(&deploy.redplane(1)->stats());
      for (auto* server : tb.store) fleet_hub.Register(&server->counters());
      fleet_hub.Register(&wheel_reg);
      fleet = std::make_unique<obs::FleetSampler>(&fleet_hub);
      for (SimTime t = 0; t <= kEnd; t += Seconds(1)) {
        sim.ScheduleAt(t, [&sim, sampler = fleet.get()] {
          sampler->Sample(sim.Now());
        });
      }
    }
  }

  // TCP endpoints: sender inside rack 0, receiver outside the DC.
  auto* sender = tb.network->AddNode<tcp::TcpSenderNode>(
      "iperf-c", net::Ipv4Addr(192, 168, 10, 50));
  auto* receiver = tb.network->AddNode<tcp::TcpReceiverNode>(
      "iperf-s", net::Ipv4Addr(10, 0, 0, 50), 5001, Seconds(1));
  tb.network->Connect(sender, 0, tb.tor[0], 6, config.host_link);
  tb.network->Connect(receiver, 0, tb.core, 8, config.host_link);
  tb.fabric->AssignAddress(sender, sender->ip());
  tb.fabric->AssignAddress(receiver, receiver->ip());
  tb.fabric->RecomputeNow();

  routing::FailureInjector injector(sim, *tb.fabric);
  if (mode != Mode::kBaseline) {
    sim.ScheduleAt(kFailAt, [&]() {
      injector.FailNode(tb.agg[0]);
      // Anycast re-advertisement of the NAT address to the survivor.
      tb.fabric->AssignAddress(tb.agg[1], kNatIp);
    });
    sim.ScheduleAt(kRecoverAt, [&]() {
      injector.RecoverNode(tb.agg[0]);
      // agg0 re-advertises; flows hash back across both paths.
      tb.fabric->AssignAddress(tb.agg[0], kNatIp);
    });
  }

  sender->Start({sender->ip(), receiver->ip(), 40000, 5001,
                 net::IpProto::kTcp});
  sim.RunUntil(kEnd);
  if (obs != nullptr && mode == Mode::kFailureRedPlane) {
    obs->SampleOnce(sim.Now());
    obs->UnwatchAll();
    obs->DetachTracer();
  }
  if (tracker != nullptr && mode == Mode::kFailureRedPlane) {
    tracker->Finalize(sim.Now());
    if (fleet != nullptr && !fleet_out.empty()) {
      std::ofstream csv(fleet_out);
      fleet->WriteCsv(csv);
      std::printf("fleet time-series: %zu samples -> %s\n",
                  fleet->NumSamples(), fleet_out.c_str());
    }
  }

  std::vector<double> gbps;
  for (std::size_t s = 0; s < static_cast<std::size_t>(kEnd / Seconds(1));
       ++s) {
    gbps.push_back(receiver->goodput().BucketSum(s) * 8.0 / 1e9);
  }
  return gbps;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string fleet_out = TakeFlag(argc, argv, "fleet-out");
  ObsSession obs(argc, argv);
  std::printf("=== Fig. 14: TCP throughput across switch failure/recovery "
              "===\n");
  std::printf("(1 Gbps fabric; failure at t=15 s, recovery at t=40 s; "
              "1 s buckets)\n\n");
  ObsSession* obs_ptr = obs.enabled() ? &obs : nullptr;
  const auto baseline = RunTimeline(Mode::kBaseline);
  const auto failure = RunTimeline(Mode::kFailureNoRedPlane);
  obs::RecoveryTracker tracker(obs.enabled() ? &obs.tracer() : nullptr);
  const auto redplane =
      RunTimeline(Mode::kFailureRedPlane, obs_ptr, &tracker, fleet_out);

  TablePrinter table({"t (s)", "Baseline (Gbps)", "Failure (Gbps)",
                      "Failure+RedPlane (Gbps)"});
  for (std::size_t s = 0; s < baseline.size(); ++s) {
    table.Row({std::to_string(s), FormatDouble(baseline[s], 2),
               FormatDouble(failure[s], 2), FormatDouble(redplane[s], 2)});
  }

  // Recovery decomposition from the audit-tap episode: fault injection to
  // first packet served, split into causally ordered phases.
  std::printf("\n=== RedPlane recovery decomposition ===\n");
  std::ostringstream timeline;
  tracker.PrintTimeline(timeline);
  std::fputs(timeline.str().c_str(), stdout);
  if (!tracker.episodes().empty() && tracker.episodes().front().complete) {
    const obs::RecoveryEpisode& e = tracker.episodes().front();
    const double measured_ms = static_cast<double>(e.Downtime()) / 1e6;
    const double model_ms =
        static_cast<double>(kDetectionDelay + kLeasePeriod) / 1e6;
    const double detect_ms = static_cast<double>(kDetectionDelay) / 1e6;
    std::printf(
        "\nmeasured downtime %.1f ms vs model bound %.0f ms (failure "
        "detection %.0f ms + lease period %.0f ms): %s\n",
        measured_ms, model_ms, detect_ms,
        static_cast<double>(kLeasePeriod) / 1e6,
        measured_ms >= detect_ms && measured_ms <= model_ms
            ? "within the paper's detection+lease window"
            : "OUTSIDE the detection+lease window");
  }
  std::printf("Without RedPlane the connection never recovers "
              "(NAT identity lost).\n");
  obs.Finish();
  return 0;
}
