// Fig. 15: switch packet-buffer occupancy due to request buffering, as a
// function of traffic rate (20-100 Gbps) and request loss rate (0/1/2%).
//
// The most demanding scenario: a write-centric app issues one replication
// request per packet; each request's truncated copy sits in the mirror
// buffer until acknowledged.  Without loss the occupancy is the
// bandwidth-delay product of the store path; with loss, unacknowledged
// copies linger for the retransmission timeout, inflating the peak.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness.h"

using namespace redplane;
using namespace redplane::bench;

namespace {

/// Runs the sync-counter at `rate_gbps` with `loss` on the store path for a
/// short window and returns the peak mirror-buffer occupancy in KB.  The
/// offered load round-robins across `num_flows` distinct flow keys (the
/// --flows axis: more flows means more lease/mirror entries per switch).
double MeasurePeakOccupancy(double rate_gbps, double loss,
                            std::size_t num_flows,
                            ObsSession* obs = nullptr) {
  Deployment deploy;
  routing::TestbedConfig config;
  // The store must absorb one request per packet at line rate for this
  // experiment (the paper's kernel-bypass store does); model a deeply
  // pipelined server rather than a 1-request-at-a-time CPU, and give the
  // store path LAG-like headroom (the experiment measures the switch's
  // request buffering, not store-link congestion).
  config.store.service_time = Nanoseconds(100);
  config.fabric_link.bandwidth_bps = 400e9;
  config.host_link.bandwidth_bps = 400e9;
  deploy.Build(config);
  auto& tb = deploy.testbed();
  auto& sim = deploy.sim();
  routing::FailureInjector injector(sim, *tb.fabric);
  injector.FailNode(tb.agg[1]);
  sim.RunUntil(Seconds(1));

  // Impose the loss on the link between the busy aggregation switch and
  // its rack-0 ToR (the path every replication request takes).
  for (std::size_t i = 0; i < tb.network->NumLinks(); ++i) {
    sim::Link* link = tb.network->GetLink(i);
    const bool agg_tor =
        (link->endpoint_a() == tb.agg[0] && link->endpoint_b() == tb.tor[0]) ||
        (link->endpoint_b() == tb.agg[0] && link->endpoint_a() == tb.tor[0]);
    if (agg_tor) link->set_loss_rate(loss);
  }

  apps::SyncCounterApp counter;
  core::RedPlaneConfig rp;
  rp.request_timeout = Milliseconds(1);
  rp.retx_scan_interval = Microseconds(100);
  deploy.DeployRedPlane(counter, rp);

  // 1500 B packets at the requested rate for a 2 ms window.
  const double pps = rate_gbps * 1e9 / 8.0 / 1500.0;
  const SimDuration gap = static_cast<SimDuration>(1e9 / pps);
  const SimDuration window = Milliseconds(2);
  const SimTime start = sim.Now();
  if (obs != nullptr) {
    obs->AttachTracer(sim);
    obs->Watch(deploy.redplane(0)->stats());
    for (auto* server : tb.store) obs->Watch(server->counters());
    obs->StartSampling(sim, obs->metrics_period(),
                       start + window + Milliseconds(5));
  }
  std::size_t flow = 0;
  for (SimTime t = start; t < start + window; t += gap) {
    // Source port is the fast axis (up to 60000 values), destination port
    // the slow one, so --flows can push the key space past 16 bits.
    const std::size_t id = flow++ % num_flows;
    net::FlowKey f{routing::ExternalHostIp(0), routing::RackServerIp(0, 0),
                   static_cast<std::uint16_t>(1024 + (id % 60000)),
                   static_cast<std::uint16_t>(80 + (id / 60000)),
                   net::IpProto::kUdp};
    sim.ScheduleAt(t, [&tb, f]() {
      tb.external[0]->Send(net::MakeUdpPacket(f, 1438));
    });
  }
  sim.RunUntil(start + window + Milliseconds(5));
  if (obs != nullptr) {
    obs->SampleOnce(sim.Now());
    obs->UnwatchAll();
    obs->DetachTracer();
  }
  return static_cast<double>(tb.agg[0]->mirror().PeakOccupancyBytes()) /
         1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  // --flows=N: distinct flow keys the offered load cycles through
  // (default 512, the original fixed diversity).
  std::size_t num_flows = 512;
  const std::string flows_flag = TakeFlag(argc, argv, "flows");
  if (!flows_flag.empty()) {
    const long long parsed = std::atoll(flows_flag.c_str());
    if (parsed > 0) num_flows = static_cast<std::size_t>(parsed);
  }
  ObsSession obs(argc, argv);
  std::printf("=== Fig. 15: packet-buffer occupancy from request buffering "
              "===\n");
  std::printf("(sync-counter: every packet issues a replication request; "
              "1500 B packets; peak over a 2 ms window; %zu flows)\n\n",
              num_flows);
  TablePrinter table({"Rate (Gbps)", "0% loss (KB)", "1% loss (KB)",
                      "2% loss (KB)"});
  for (double rate : {20.0, 40.0, 60.0, 80.0, 100.0}) {
    std::vector<std::string> row{FormatDouble(rate, 0)};
    for (double loss : {0.0, 0.01, 0.02}) {
      // Instrument the paper's stress point: 100 Gbps at 2% loss.
      ObsSession* obs_ptr =
          obs.enabled() && rate == 100.0 && loss == 0.02 ? &obs : nullptr;
      row.push_back(FormatDouble(
          MeasurePeakOccupancy(rate, loss, num_flows, obs_ptr), 2));
    }
    table.Row(row);
  }
  obs.Finish();
  std::printf("\nPaper anchors: <1.5 KB at 100 Gbps with no loss; growing "
              "with loss (lost requests occupy the buffer\nfor a "
              "retransmission timeout) to ~18 KB at 100 Gbps / 2%% — tiny "
              "against the ASIC's tens of MB of buffer.\n");
  return 0;
}
