#include "harness.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>

#include "net/codec.h"

namespace redplane::bench {

Deployment::Deployment() = default;
Deployment::~Deployment() = default;

void Deployment::Build(routing::TestbedConfig config) {
  testbed_ = std::make_unique<routing::Testbed>(
      routing::BuildTestbed(sim_, config));
}

void Deployment::DeployRedPlane(core::SwitchApp& app,
                                core::RedPlaneConfig config) {
  auto shard_for = [this](const net::PartitionKey&) {
    return testbed_->StoreHeadIp();
  };
  for (int i = 0; i < 2; ++i) {
    redplane_[i] = std::make_unique<core::RedPlaneSwitch>(
        *testbed_->agg[i], app, shard_for, config);
    testbed_->agg[i]->SetPipeline(redplane_[i].get());
  }
}

void Deployment::DeployPlain(
    core::SwitchApp& app,
    std::function<std::vector<std::byte>(const net::PartitionKey&)>
        initializer) {
  for (int i = 0; i < 2; ++i) {
    plain_[i] = std::make_unique<baselines::PlainAppPipeline>(
        *testbed_->agg[i], app, initializer);
    testbed_->agg[i]->SetPipeline(plain_[i].get());
  }
}

void Deployment::AnycastToAgg(net::Ipv4Addr ip, int i) {
  testbed_->fabric->AssignAddress(testbed_->agg[i], ip);
  testbed_->fabric->RecomputeNow();
}

RttProbe::RttProbe(sim::HostNode* probe_host) : host_(probe_host) {
  host_->SetHandler([this](sim::HostNode&, net::Packet pkt) {
    if (pkt.payload.size() < 8) return;
    net::ByteReader r(pkt.payload);
    const auto sent_at = static_cast<SimTime>(r.U64());
    const SimTime now = host_->sim().Now();
    if (now >= sent_at) {
      rtt_us_.Add(ToMicroseconds(now - sent_at));
      ++received_;
    }
  });
}

void RttProbe::Send(const net::FlowKey& flow, std::uint32_t pad) {
  SendPacket(net::MakeUdpPacket(flow, pad));
}

void RttProbe::SendPacket(net::Packet pkt) {
  std::vector<std::byte> buf;
  net::ByteWriter w(buf);
  w.U64(static_cast<std::uint64_t>(host_->sim().Now()));
  pkt.payload = std::move(buf);
  ++sent_;
  host_->Send(std::move(pkt));
}

void InstallEcho(sim::HostNode* host) {
  host->SetHandler([](sim::HostNode& self, net::Packet pkt) {
    auto flow = pkt.Flow();
    if (!flow.has_value()) return;
    net::Packet reply;
    if (pkt.tcp.has_value()) {
      reply = net::MakeTcpPacket(flow->Reversed(), net::TcpFlags::kAck, 0, 0,
                                 pkt.pad_bytes);
    } else {
      reply = net::MakeUdpPacket(flow->Reversed(), pkt.pad_bytes);
    }
    reply.payload = pkt.payload;  // timestamp rides back
    self.Send(std::move(reply));
  });
}

void PrintLatencySummary(const std::string& name, const SampleSet& samples) {
  if (samples.Empty()) {
    std::printf("%-28s  (no samples)\n", name.c_str());
    return;
  }
  std::printf("%-28s  p50=%8.1f us  p90=%8.1f us  p99=%8.1f us  (n=%zu)\n",
              name.c_str(), samples.Percentile(50), samples.Percentile(90),
              samples.Percentile(99), samples.Count());
}

void PrintCdf(const std::string& name, const SampleSet& samples,
              std::size_t points) {
  if (samples.Empty()) return;
  std::printf("  CDF %s:", name.c_str());
  for (const auto& [value, frac] : samples.Cdf(points)) {
    std::printf(" (%.1f,%.2f)", value, frac);
  }
  std::printf("\n");
}

void ShapeFlowChurn(std::vector<trace::TracePacket>& packets,
                    SimDuration min_gap) {
  std::vector<net::FlowKey> active;
  std::set<net::FlowKey> seen;
  SimTime last_intro = -min_gap;
  std::size_t reuse_cursor = 0;
  for (auto& pkt : packets) {
    if (seen.count(pkt.flow)) continue;
    if (pkt.time - last_intro >= min_gap || active.empty()) {
      seen.insert(pkt.flow);
      active.push_back(pkt.flow);
      last_intro = pkt.time;
    } else {
      pkt.flow = active[reuse_cursor++ % active.size()];
    }
  }
}

TablePrinter::TablePrinter(std::vector<std::string> headers) {
  for (std::size_t i = 0; i < headers.size(); ++i) {
    widths_.push_back(std::max<std::size_t>(headers[i].size() + 2,
                                            i == 0 ? 34 : 16));
  }
  for (std::size_t i = 0; i < headers.size(); ++i) {
    std::printf("%-*s", static_cast<int>(widths_[i]), headers[i].c_str());
  }
  std::printf("\n");
  std::size_t total = 0;
  for (auto w : widths_) total += w;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::size_t w = i < widths_.size() ? widths_[i] : 16;
    if (cells[i].size() + 1 > w) w = cells[i].size() + 1;
    std::printf("%-*s", static_cast<int>(w), cells[i].c_str());
  }
  std::printf("\n");
}

namespace {

/// Consumes `--<flag>=value` or `--<flag> value` from argv; returns the
/// value (empty when absent).
std::string TakeFlag(int& argc, char** argv, const std::string& flag) {
  const std::string prefix = "--" + flag + "=";
  const std::string bare = "--" + flag;
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
      continue;
    }
    if (arg == bare && i + 1 < argc) {
      value = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

}  // namespace

ObsSession::ObsSession(int& argc, char** argv) : tracer_(1u << 18) {
  trace_path_ = TakeFlag(argc, argv, "trace-out");
  metrics_path_ = TakeFlag(argc, argv, "metrics-out");
}

ObsSession::~ObsSession() {
  Finish();
  DetachTracer();
}

void ObsSession::AttachTracer(sim::Simulator& sim) {
  if (!enabled()) return;
  tracer_.SetClock([&sim]() { return sim.Now(); });
  if (!attached_) {
    prev_tracer_ = obs::SetGlobalTracer(&tracer_);
    attached_ = true;
  }
  tracer_.SetEnabled(trace_enabled());
}

void ObsSession::DetachTracer() {
  if (!attached_) return;
  tracer_.SetEnabled(false);
  tracer_.ClearClock();
  obs::SetGlobalTracer(prev_tracer_);
  prev_tracer_ = nullptr;
  attached_ = false;
}

void ObsSession::Watch(const obs::MetricRegistry& registry) {
  if (!metrics_enabled()) return;
  hub_.Register(&registry);
}

void ObsSession::UnwatchAll() { hub_.Clear(); }

void ObsSession::StartSampling(sim::Simulator& sim, SimDuration period,
                               SimTime horizon) {
  if (!metrics_enabled() || period <= 0) return;
  // The simulator runs until its queue drains, so a self-rescheduling
  // sampler would never let it terminate; pre-schedule a bounded horizon.
  for (SimTime t = period; t <= horizon; t += period) {
    sim.ScheduleAt(t, [this, &sim]() { SampleOnce(sim.Now()); });
  }
}

void ObsSession::SampleOnce(SimTime t) {
  if (!metrics_enabled()) return;
  series_.Append(hub_.Snapshot(t));
}

void ObsSession::Finish() {
  if (finished_) return;
  finished_ = true;
  if (trace_enabled()) {
    std::ofstream os(trace_path_);
    tracer_.WriteChromeTrace(os);
    os.flush();
    if (os) {
      std::printf("\n[obs] wrote %zu trace events (%llu evicted) to %s\n",
                  tracer_.size(),
                  static_cast<unsigned long long>(tracer_.evicted()),
                  trace_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] ERROR: failed to write trace to %s\n",
                   trace_path_.c_str());
    }
    std::printf("[obs] per-phase latency breakdown:\n");
    tracer_.PrintBreakdown(std::cout);
  }
  if (metrics_enabled()) {
    std::ofstream os(metrics_path_);
    series_.WriteJson(os);
    os.flush();
    if (os) {
      std::printf("[obs] wrote %zu metric snapshots to %s\n", series_.Size(),
                  metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] ERROR: failed to write metrics to %s\n",
                   metrics_path_.c_str());
    }
  }
}

}  // namespace redplane::bench
