#include "harness.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>

#include "net/codec.h"
#include "obs/spans.h"

namespace redplane::bench {

Deployment::Deployment() = default;
Deployment::~Deployment() = default;

void Deployment::Build(routing::TestbedConfig config) {
  testbed_ = std::make_unique<routing::Testbed>(
      routing::BuildTestbed(sim_, config));
}

void Deployment::DeployRedPlane(core::SwitchApp& app,
                                core::RedPlaneConfig config) {
  auto shard_for = [this](const net::PartitionKey&) {
    return testbed_->StoreHeadIp();
  };
  for (int i = 0; i < 2; ++i) {
    redplane_[i] = std::make_unique<core::RedPlaneSwitch>(
        *testbed_->agg[i], app, shard_for, config);
    testbed_->agg[i]->SetPipeline(redplane_[i].get());
  }
}

void Deployment::DeployPlain(
    core::SwitchApp& app,
    std::function<std::vector<std::byte>(const net::PartitionKey&)>
        initializer) {
  for (int i = 0; i < 2; ++i) {
    plain_[i] = std::make_unique<baselines::PlainAppPipeline>(
        *testbed_->agg[i], app, initializer);
    testbed_->agg[i]->SetPipeline(plain_[i].get());
  }
}

void Deployment::AnycastToAgg(net::Ipv4Addr ip, int i) {
  testbed_->fabric->AssignAddress(testbed_->agg[i], ip);
  testbed_->fabric->RecomputeNow();
}

RttProbe::RttProbe(sim::HostNode* probe_host) : host_(probe_host) {
  host_->SetHandler([this](sim::HostNode&, net::Packet pkt) {
    if (pkt.payload.size() < 8) return;
    net::ByteReader r(pkt.payload);
    const auto sent_at = static_cast<SimTime>(r.U64());
    const SimTime now = host_->sim().Now();
    if (now >= sent_at) {
      rtt_us_.Add(ToMicroseconds(now - sent_at));
      ++received_;
    }
  });
}

void RttProbe::Send(const net::FlowKey& flow, std::uint32_t pad) {
  SendPacket(net::MakeUdpPacket(flow, pad));
}

void RttProbe::SendPacket(net::Packet pkt) {
  std::vector<std::byte> buf;
  net::ByteWriter w(buf);
  w.U64(static_cast<std::uint64_t>(host_->sim().Now()));
  pkt.payload = std::move(buf);
  ++sent_;
  host_->Send(std::move(pkt));
}

void InstallEcho(sim::HostNode* host) {
  host->SetHandler([](sim::HostNode& self, net::Packet pkt) {
    auto flow = pkt.Flow();
    if (!flow.has_value()) return;
    net::Packet reply;
    if (pkt.tcp.has_value()) {
      reply = net::MakeTcpPacket(flow->Reversed(), net::TcpFlags::kAck, 0, 0,
                                 pkt.pad_bytes);
    } else {
      reply = net::MakeUdpPacket(flow->Reversed(), pkt.pad_bytes);
    }
    reply.payload = pkt.payload;  // timestamp rides back
    self.Send(std::move(reply));
  });
}

void PrintLatencySummary(const std::string& name, const SampleSet& samples) {
  if (samples.Empty()) {
    std::printf("%-28s  (no samples)\n", name.c_str());
    return;
  }
  std::printf("%-28s  p50=%8.1f us  p90=%8.1f us  p99=%8.1f us  (n=%zu)\n",
              name.c_str(), samples.Percentile(50), samples.Percentile(90),
              samples.Percentile(99), samples.Count());
}

void PrintCdf(const std::string& name, const SampleSet& samples,
              std::size_t points) {
  if (samples.Empty()) return;
  std::printf("  CDF %s:", name.c_str());
  for (const auto& [value, frac] : samples.Cdf(points)) {
    std::printf(" (%.1f,%.2f)", value, frac);
  }
  std::printf("\n");
}

void ShapeFlowChurn(std::vector<trace::TracePacket>& packets,
                    SimDuration min_gap) {
  std::vector<net::FlowKey> active;
  std::set<net::FlowKey> seen;
  SimTime last_intro = -min_gap;
  std::size_t reuse_cursor = 0;
  for (auto& pkt : packets) {
    if (seen.count(pkt.flow)) continue;
    if (pkt.time - last_intro >= min_gap || active.empty()) {
      seen.insert(pkt.flow);
      active.push_back(pkt.flow);
      last_intro = pkt.time;
    } else {
      pkt.flow = active[reuse_cursor++ % active.size()];
    }
  }
}

TablePrinter::TablePrinter(std::vector<std::string> headers) {
  for (std::size_t i = 0; i < headers.size(); ++i) {
    widths_.push_back(std::max<std::size_t>(headers[i].size() + 2,
                                            i == 0 ? 34 : 16));
  }
  for (std::size_t i = 0; i < headers.size(); ++i) {
    std::printf("%-*s", static_cast<int>(widths_[i]), headers[i].c_str());
  }
  std::printf("\n");
  std::size_t total = 0;
  for (auto w : widths_) total += w;
  for (std::size_t i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::Row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::size_t w = i < widths_.size() ? widths_[i] : 16;
    if (cells[i].size() + 1 > w) w = cells[i].size() + 1;
    std::printf("%-*s", static_cast<int>(w), cells[i].c_str());
  }
  std::printf("\n");
}

std::string TakeFlag(int& argc, char** argv, const std::string& flag) {
  const std::string prefix = "--" + flag + "=";
  const std::string bare = "--" + flag;
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      value = arg.substr(prefix.size());
      continue;
    }
    if (arg == bare && i + 1 < argc) {
      value = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

namespace {

/// Parses "100us" / "10ms" / "1s" (also bare nanoseconds); 0 on failure.
SimDuration ParseDurationFlag(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t pos = 0;
  long long n = 0;
  try {
    n = std::stoll(text, &pos);
  } catch (...) {
    return 0;
  }
  if (n < 0) return 0;
  const std::string unit = text.substr(pos);
  if (unit == "us") return Microseconds(n);
  if (unit == "ms") return Milliseconds(n);
  if (unit == "s") return Seconds(n);
  if (unit.empty() || unit == "ns") return n;
  return 0;
}

}  // namespace

ObsSession::ObsSession(int& argc, char** argv) : tracer_(1u << 18) {
  trace_path_ = TakeFlag(argc, argv, "trace-out");
  metrics_path_ = TakeFlag(argc, argv, "metrics-out");
  spans_path_ = TakeFlag(argc, argv, "spans-out");
  profile_path_ = TakeFlag(argc, argv, "profile-out");
  const std::string every = TakeFlag(argc, argv, "metrics-every");
  if (!every.empty()) {
    const SimDuration period = ParseDurationFlag(every);
    if (period > 0) {
      metrics_period_ = period;
    } else {
      std::fprintf(stderr, "[obs] ignoring unparsable --metrics-every=%s\n",
                   every.c_str());
    }
  }
  if (profile_enabled()) {
    // Wall-clock profiling is independent of the simulator; arm it for the
    // whole process lifetime so setup cost is attributed too.
    profiler_.SetEnabled(true);
    prev_profiler_ = obs::SetGlobalProfiler(&profiler_);
    profiler_installed_ = true;
  }
}

ObsSession::~ObsSession() {
  Finish();
  DetachTracer();
  if (profiler_installed_) {
    profiler_.SetEnabled(false);
    obs::SetGlobalProfiler(prev_profiler_);
    prev_profiler_ = nullptr;
    profiler_installed_ = false;
  }
}

void ObsSession::AttachTracer(sim::Simulator& sim) {
  if (!enabled()) return;
  tracer_.SetClock([&sim]() { return sim.Now(); });
  if (!attached_) {
    prev_tracer_ = obs::SetGlobalTracer(&tracer_);
    attached_ = true;
  }
  tracer_.SetEnabled(trace_enabled() || spans_enabled());
}

void ObsSession::DetachTracer() {
  if (!attached_) return;
  tracer_.SetEnabled(false);
  tracer_.ClearClock();
  obs::SetGlobalTracer(prev_tracer_);
  prev_tracer_ = nullptr;
  attached_ = false;
}

void ObsSession::Watch(const obs::MetricRegistry& registry) {
  if (!metrics_enabled()) return;
  hub_.Register(&registry);
}

void ObsSession::UnwatchAll() { hub_.Clear(); }

void ObsSession::StartSampling(sim::Simulator& sim, SimDuration period,
                               SimTime horizon) {
  if (!metrics_enabled() || period <= 0) return;
  // The simulator runs until its queue drains, so a self-rescheduling
  // sampler would never let it terminate; pre-schedule a bounded horizon.
  for (SimTime t = period; t <= horizon; t += period) {
    sim.ScheduleAt(t, [this, &sim]() { SampleOnce(sim.Now()); });
  }
}

void ObsSession::SampleOnce(SimTime t) {
  if (!metrics_enabled()) return;
  series_.Append(hub_.Snapshot(t));
}

void ObsSession::Finish() {
  if (finished_) return;
  finished_ = true;
  if (trace_enabled()) {
    std::ofstream os(trace_path_);
    tracer_.WriteChromeTrace(os);
    os.flush();
    if (os) {
      std::printf("\n[obs] wrote %zu trace events (%llu evicted) to %s\n",
                  tracer_.size(),
                  static_cast<unsigned long long>(tracer_.evicted()),
                  trace_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] ERROR: failed to write trace to %s\n",
                   trace_path_.c_str());
    }
    std::printf("[obs] per-phase latency breakdown:\n");
    tracer_.PrintBreakdown(std::cout);
  }
  if (metrics_enabled()) {
    std::ofstream os(metrics_path_);
    series_.WriteJson(os);
    os.flush();
    if (os) {
      std::printf("[obs] wrote %zu metric snapshots to %s\n", series_.Size(),
                  metrics_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] ERROR: failed to write metrics to %s\n",
                   metrics_path_.c_str());
    }
  }
  if (spans_enabled()) {
    const std::vector<obs::SpanTree> spans = obs::BuildSpanTrees(tracer_);
    std::ofstream os(spans_path_);
    obs::WriteSpansJson(os, spans);
    os.flush();
    if (os) {
      std::printf("[obs] wrote %zu request spans to %s\n", spans.size(),
                  spans_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] ERROR: failed to write spans to %s\n",
                   spans_path_.c_str());
    }
    std::printf("[obs] per-segment latency breakdown:\n");
    for (const obs::PhaseStats& ph : obs::SummarizeSegments(spans)) {
      std::printf("  %-28s n=%-8zu p50=%10.1f us  p99=%10.1f us\n",
                  ph.name.c_str(), ph.samples_us.Count(),
                  ph.samples_us.Percentile(50), ph.samples_us.Percentile(99));
    }
  }
  if (profile_enabled()) {
    std::ofstream os(profile_path_);
    profiler_.WriteJson(os);
    os.flush();
    const std::string folded_path = profile_path_ + ".folded";
    std::ofstream folded(folded_path);
    profiler_.WriteCollapsed(folded);
    folded.flush();
    if (os && folded) {
      std::printf("[obs] wrote profile (%zu call-path nodes) to %s (+.folded)\n",
                  profiler_.NumNodes(), profile_path_.c_str());
    } else {
      std::fprintf(stderr, "[obs] ERROR: failed to write profile to %s\n",
                   profile_path_.c_str());
    }
  }
}

}  // namespace redplane::bench
