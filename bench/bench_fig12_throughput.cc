// Fig. 12: data-plane throughput of each application with and without
// RedPlane at the paper's offered load (207.6 Mpps of 64 B packets; the
// aggregation-to-core link caps forwarding at ~122.5 Mpps).
//
// Uses the calibrated analytic model (the paper itself uses an analytical
// model for at-scale analysis); per-app parameters come from the measured
// packet-level behaviour: synchronous-update fraction, buffered-read
// fraction, and snapshot traffic.
#include <cstdio>

#include "core/analytic.h"
#include "harness.h"

using namespace redplane;
using namespace redplane::bench;

namespace {

struct AppProfile {
  const char* name;
  double sync_update_fraction;
  double read_buffer_fraction;
  double snapshot_bps;
};

}  // namespace

int main(int argc, char** argv) {
  // Analytic-model bench: no simulator run, so the session only consumes the
  // shared observability flags (a profile covers the model evaluation).
  ObsSession obs(argc, argv);
  std::printf("=== Fig. 12: throughput with and without RedPlane ===\n");
  std::printf("(offered 207.6 Mpps of 64 B packets; fabric bottleneck "
              "~122.5 Mpps; 2 store servers x 30 Mrps)\n\n");

  // Per-app protocol behaviour (measured by the Fig. 10 bench):
  //  * NAT / firewall / LB: replication only on flow arrival (~1e-4/pkt),
  //  * EPC-SGW: 1/18 of packets write; data packets overlapping a write
  //    buffer through the network (~2 per signaling event),
  //  * HH-detector / Async-Counter: no per-packet coordination, snapshot
  //    traffic only,
  //  * Sync-Counter: every packet writes.
  const AppProfile profiles[] = {
      {"NAT", 1e-4, 0, 0},
      {"Firewall", 1e-4, 0, 0},
      {"Load balancer", 1e-4, 0, 0},
      {"EPC-SGW", 1.0 / 18, 2.0 / 18, 0},
      {"HH-detector", 0, 0, 35e6},
      {"Async-Counter", 0, 0, 35e6},
      {"Sync-Counter", 1.0, 0, 0},
  };

  TablePrinter table({"Application", "w/o RedPlane (Mpps)",
                      "w/ RedPlane (Mpps)", "Bottleneck"});
  for (const AppProfile& p : profiles) {
    core::AnalyticConfig base;
    const double without = core::PredictThroughput(base).throughput_pps / 1e6;

    core::AnalyticConfig with = base;
    with.sync_update_fraction = p.sync_update_fraction;
    with.read_buffer_fraction = p.read_buffer_fraction;
    with.snapshot_bps = p.snapshot_bps;
    with.num_stores = 2;
    with.store_rps = 30e6;
    const auto result = core::PredictThroughput(with);
    table.Row({p.name, FormatDouble(without, 1),
               FormatDouble(result.throughput_pps / 1e6, 1),
               result.bottleneck});
  }
  std::printf("\nPaper anchors: read-centric and async apps match the "
              "~122.5 Mpps no-FT forwarding cap;\nEPC-SGW is slightly lower "
              "(buffered data during replication); Sync-Counter drops to "
              "about half,\nbottlenecked by the state store.\n");
  return 0;
}
