// Shared experiment harness for the paper-reproduction benches.
//
// Provides the pieces every figure needs: the testbed with a chosen
// application deployment, round-trip latency probing (a probe host stamps
// its send time into the payload; an echo host reflects the packet; the
// probe computes the RTT on return — timestamps survive RedPlane's
// piggybacking because payload bytes do), trace replay, and tabular output
// helpers that print the series each figure plots.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/counter.h"
#include "apps/epc_sgw.h"
#include "apps/firewall.h"
#include "apps/heavy_hitter.h"
#include "apps/kv_store.h"
#include "apps/load_balancer.h"
#include "apps/nat.h"
#include "baselines/controller_ft.h"
#include "baselines/plain_pipeline.h"
#include "baselines/server_nf.h"
#include "common/stats.h"
#include "core/redplane_switch.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/tracer.h"
#include "routing/failure.h"
#include "routing/topology.h"
#include "trace/workload.h"

namespace redplane::bench {

/// Addressing constants shared by the experiments.
inline constexpr net::Ipv4Addr kInternalPrefix{192, 168, 0, 0};
inline constexpr std::uint32_t kInternalMask = 0xffff0000;
inline constexpr net::Ipv4Addr kNatIp{100, 100, 0, 1};
inline constexpr net::Ipv4Addr kVip{100, 100, 0, 2};

/// A testbed plus one application deployed on the aggregation switches.
/// Owns every heap object an experiment needs.
class Deployment {
 public:
  Deployment();
  ~Deployment();

  sim::Simulator& sim() { return sim_; }
  routing::Testbed& testbed() { return *testbed_; }
  core::RedPlaneSwitch* redplane(int i) { return redplane_[i].get(); }
  baselines::PlainAppPipeline* plain(int i) { return plain_[i].get(); }

  /// Rebuilds the testbed with `store_config` merged in.
  void Build(routing::TestbedConfig config = {});

  /// Deploys `app` RedPlane-enabled on both aggregation switches.
  void DeployRedPlane(core::SwitchApp& app, core::RedPlaneConfig config = {});

  /// Deploys `app` without fault tolerance (per-switch local state).
  void DeployPlain(core::SwitchApp& app,
                   std::function<std::vector<std::byte>(
                       const net::PartitionKey&)> initializer = nullptr);

  /// Assigns an application-terminated address (NAT IP, VIP) to agg
  /// switch `i` and recomputes routes.
  void AnycastToAgg(net::Ipv4Addr ip, int i);

 private:
  sim::Simulator sim_;
  std::unique_ptr<routing::Testbed> testbed_;
  std::array<std::unique_ptr<core::RedPlaneSwitch>, 2> redplane_;
  std::array<std::unique_ptr<baselines::PlainAppPipeline>, 2> plain_;
};

/// Round-trip probing: stamps send time into payload; the echo side calls
/// MakeEchoHandler; the probe side records RTTs into `rtt_us`.
class RttProbe {
 public:
  /// Installs the probe receive handler on `probe_host`.
  explicit RttProbe(sim::HostNode* probe_host);

  /// Sends one probe packet for `flow` with `pad` extra bytes.
  void Send(const net::FlowKey& flow, std::uint32_t pad = 40);

  /// Sends a pre-built packet after stamping the timestamp (the packet's
  /// payload is overwritten).
  void SendPacket(net::Packet pkt);

  SampleSet& rtt_us() { return rtt_us_; }
  std::size_t sent() const { return sent_; }
  std::size_t received() const { return received_; }

 private:
  sim::HostNode* host_;
  SampleSet rtt_us_;
  std::size_t sent_ = 0;
  std::size_t received_ = 0;
};

/// Echo handler: reflects any UDP/TCP packet back to its source,
/// preserving the payload (and therefore the probe timestamp).
void InstallEcho(sim::HostNode* host);

/// Prints "name: p50=... p90=... p99=..." and optionally a CDF block.
void PrintLatencySummary(const std::string& name, const SampleSet& samples);
void PrintCdf(const std::string& name, const SampleSet& samples,
              std::size_t points = 20);

/// Rewrites a trace so that new flows are introduced at most once per
/// `min_gap` of trace time (packets of not-yet-introduced flows are remapped
/// onto already-active ones).  Real traces have steady flow churn; synthetic
/// mixes introduce every flow in an initial burst, which overloads the
/// control-plane install queue in a way no production trace does.
void ShapeFlowChurn(std::vector<trace::TracePacket>& packets,
                    SimDuration min_gap);

/// Observability session for benches: owns a Tracer, a MetricsHub, a
/// time-series log and a Profiler, driven by command-line flags (both
/// `--flag=value` and `--flag value` forms):
///   --trace-out=FILE     Chrome-trace event dump + per-phase breakdown
///   --metrics-out=FILE   periodic metric snapshots (JSON)
///   --metrics-every=DUR  snapshot period (e.g. 50us, 10ms, 1s; default
///                        100ms)
///   --spans-out=FILE     per-request span trees reconstructed from the
///                        trace (implies tracing; see obs/spans.h)
///   --profile-out=FILE   wall-clock subsystem profile: JSON to FILE plus
///                        collapsed stacks to FILE.folded
/// When no flag is given the session is inert and adds no overhead.
///
/// Lifecycle per experiment run:
///   AttachTracer(sim)  — clock the tracer off the simulator, install it as
///                        the process-global tracer and enable recording
///   Watch(registry)    — include a component's metrics in snapshots
///   StartSampling(...) — pre-schedule periodic MetricsHub snapshots up to a
///                        bounded horizon (the simulator runs until its
///                        queue drains, so sampling must not self-reschedule)
///   SampleOnce(t)      — take one extra snapshot (e.g. after sim.Run())
///   UnwatchAll() + DetachTracer() — BEFORE the watched components are
///                        destroyed (the hub holds non-owning pointers)
///   Finish()           — write the trace / metrics JSON files and print the
///                        per-phase latency breakdown
class ObsSession {
 public:
  /// Parses and removes the observability flags from argv.
  ObsSession(int& argc, char** argv);
  ~ObsSession();

  bool trace_enabled() const { return !trace_path_.empty(); }
  bool metrics_enabled() const { return !metrics_path_.empty(); }
  bool spans_enabled() const { return !spans_path_.empty(); }
  bool profile_enabled() const { return !profile_path_.empty(); }
  bool enabled() const {
    return trace_enabled() || metrics_enabled() || spans_enabled() ||
           profile_enabled();
  }

  /// Snapshot period for StartSampling (from --metrics-every; 100ms default).
  SimDuration metrics_period() const { return metrics_period_; }

  void AttachTracer(sim::Simulator& sim);
  void DetachTracer();

  void Watch(const obs::MetricRegistry& registry);
  void UnwatchAll();

  /// Pre-schedules snapshots at `period` intervals in (0, horizon].
  void StartSampling(sim::Simulator& sim, SimDuration period, SimTime horizon);
  void SampleOnce(SimTime t);

  /// Writes the output files and prints the phase breakdown; idempotent.
  void Finish();

  obs::Tracer& tracer() { return tracer_; }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string spans_path_;
  std::string profile_path_;
  SimDuration metrics_period_ = Milliseconds(100);
  obs::Tracer tracer_;
  obs::MetricsHub hub_;
  obs::TimeSeriesLog series_;
  obs::Profiler profiler_;
  obs::Tracer* prev_tracer_ = nullptr;
  obs::Profiler* prev_profiler_ = nullptr;
  bool attached_ = false;
  bool profiler_installed_ = false;
  bool finished_ = false;
};

/// Consumes `--<flag>=value` or `--<flag> value` from argv; returns the
/// value (empty when absent).  Benches use this for their own axes (e.g.
/// `--flows`) before handing the remaining argv to ObsSession.
std::string TakeFlag(int& argc, char** argv, const std::string& flag);

/// Markdown-ish table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void Row(const std::vector<std::string>& cells);

 private:
  std::vector<std::size_t> widths_;
};

}  // namespace redplane::bench
