// Table 1: the impact of a switch failure on each class of stateful
// in-switch application, demonstrated end to end — and the same scenario
// with RedPlane, where the impact disappears.
//
// For each application we establish state through one aggregation switch,
// fail it, reroute, and report the application-level symptom.
#include <cstdio>
#include <sstream>

#include "audit/auditor.h"
#include "harness.h"
#include "net/codec.h"
#include "obs/recovery.h"

using namespace redplane;
using namespace redplane::bench;

namespace {

struct Impact {
  std::string without_redplane;
  std::string with_redplane;
  /// Phase decomposition of the with-RedPlane failover (obs/recovery.h);
  /// empty for scenarios that do not run a service-resuming failover.
  std::string recovery_timeline;
};

struct Scenario {
  Deployment deploy;
  routing::Testbed* tb = nullptr;
  std::unique_ptr<routing::FailureInjector> injector;
  audit::Auditor auditor;
  obs::RecoveryTracker tracker;

  void Build(std::function<std::vector<std::byte>(const net::PartitionKey&)>
                 initializer = nullptr) {
    routing::TestbedConfig config;
    config.store.lease_period = Milliseconds(50);
    config.fabric.failure_detection_delay = Milliseconds(5);
    config.store.initializer = std::move(initializer);
    deploy.Build(config);
    tb = &deploy.testbed();
    injector =
        std::make_unique<routing::FailureInjector>(deploy.sim(), *tb->fabric);
  }

  core::RedPlaneConfig RpConfig() {
    core::RedPlaneConfig rp;
    rp.lease_period = Milliseconds(50);
    rp.renew_interval = Milliseconds(25);
    return rp;
  }

  /// Pins all traffic to agg0 (single-switch operation) so state
  /// placement is deterministic.  Call right after Build().
  void PinToAgg0() {
    injector->FailNode(tb->agg[1]);
    deploy.sim().RunUntil(deploy.sim().Now() + Milliseconds(50));
  }

  /// Fails the state-holding switch (agg0) and brings the empty standby
  /// (agg1) up; waits out detection + lease migration.
  void FailOver() {
    auto& sim = deploy.sim();
    injector->RecoverNode(tb->agg[1]);
    injector->FailNode(tb->agg[0]);
    sim.RunUntil(sim.Now() + Milliseconds(200));
  }

  /// Arms the audit-tap stream into the recovery tracker.  Call right
  /// before FailOver() — PinToAgg0's deliberate agg1 failure would
  /// otherwise open a bogus episode.
  void ArmForensics() {
    auto& sim = deploy.sim();
    auditor.SetClock([&sim] { return sim.Now(); });
    audit::SetGlobalAuditor(&auditor);
    auditor.SetEnabled(true);
    auditor.SetTapObserver(
        [this](const audit::TapEvent& ev) { tracker.OnTapEvent(ev); });
  }

  /// Finalizes the tracker and renders the per-phase timeline.
  std::string TimelineText() {
    tracker.Finalize(deploy.sim().Now());
    std::ostringstream os;
    tracker.PrintTimeline(os);
    return os.str();
  }
};

/// Firewall: established connection's return traffic after failover.
Impact FirewallImpact() {
  Impact impact;
  for (bool redplane : {false, true}) {
    Scenario s;
    s.Build();
    apps::FirewallApp fw(kInternalPrefix, kInternalMask);
    if (redplane) {
      s.deploy.DeployRedPlane(fw, s.RpConfig());
    } else {
      s.deploy.DeployPlain(fw);
    }
    s.PinToAgg0();
    auto& sim = s.deploy.sim();
    int inbound_delivered = 0;
    s.tb->rack_servers[0][0]->SetHandler(
        [&](sim::HostNode&, net::Packet) { ++inbound_delivered; });
    net::FlowKey out{routing::RackServerIp(0, 0), routing::ExternalHostIp(0),
                     7000, 80, net::IpProto::kTcp};
    // Outbound SYN establishes; inbound reply admitted.
    s.tb->rack_servers[0][0]->Send(
        net::MakeTcpPacket(out, net::TcpFlags::kSyn, 1, 0, 0));
    sim.RunUntil(sim.Now() + Milliseconds(60));
    s.tb->external[0]->Send(
        net::MakeTcpPacket(out.Reversed(), net::TcpFlags::kAck, 1, 2, 10));
    sim.RunUntil(sim.Now() + Milliseconds(20));
    const int before = inbound_delivered;

    if (redplane) s.ArmForensics();
    s.FailOver();
    s.tb->external[0]->Send(
        net::MakeTcpPacket(out.Reversed(), net::TcpFlags::kAck, 2, 2, 10));
    sim.RunUntil(sim.Now() + Milliseconds(200));
    const bool broken = inbound_delivered == before;
    auto& field = redplane ? impact.with_redplane : impact.without_redplane;
    field = broken ? "connection broken (valid reply dropped)"
                   : "connection intact";
    if (redplane) impact.recovery_timeline = s.TimelineText();
  }
  return impact;
}

/// EPC-SGW: active session data after failover.
Impact SgwImpact() {
  Impact impact;
  for (bool redplane : {false, true}) {
    Scenario s;
    s.Build();
    apps::EpcSgwApp sgw;
    if (redplane) {
      s.deploy.DeployRedPlane(sgw, s.RpConfig());
    } else {
      s.deploy.DeployPlain(sgw);
    }
    s.PinToAgg0();
    auto& sim = s.deploy.sim();
    int delivered = 0;
    s.tb->rack_servers[0][1]->SetHandler(
        [&](sim::HostNode&, net::Packet) { ++delivered; });
    const net::Ipv4Addr user = routing::RackServerIp(0, 1);
    s.tb->external[0]->Send(apps::MakeSgwSignalingPacket(
        routing::ExternalHostIp(0), user, 77, net::Ipv4Addr(1, 1, 1, 1)));
    sim.RunUntil(sim.Now() + Milliseconds(60));
    net::FlowKey data{routing::ExternalHostIp(0), user, 40000,
                      apps::kSgwDataPort, net::IpProto::kUdp};
    s.tb->external[0]->Send(net::MakeUdpPacket(data, 100));
    sim.RunUntil(sim.Now() + Milliseconds(100));
    const int before = delivered;

    if (redplane) s.ArmForensics();
    s.FailOver();
    s.tb->external[0]->Send(net::MakeUdpPacket(data, 100));
    sim.RunUntil(sim.Now() + Milliseconds(300));
    auto& field = redplane ? impact.with_redplane : impact.without_redplane;
    field = delivered == before ? "active session broken (data dropped)"
                                : "session continues";
    if (redplane) impact.recovery_timeline = s.TimelineText();
  }
  return impact;
}

/// Heavy-hitter detection: detection accuracy after failover.
Impact HeavyHitterImpact() {
  Impact impact;
  for (bool redplane : {false, true}) {
    Scenario s;
    s.Build();
    apps::HeavyHitterConfig cfg;
    cfg.vlans = {1};
    cfg.threshold = 200;
    apps::HeavyHitterApp hh(cfg);
    core::RedPlaneConfig rp = s.RpConfig();
    rp.linearizable = false;
    rp.snapshot_period = Milliseconds(1);
    if (redplane) {
      s.deploy.DeployRedPlane(hh, rp);
      s.deploy.redplane(0)->StartSnapshotReplication(hh);
    } else {
      s.deploy.DeployPlain(hh);
    }
    auto& sim = s.deploy.sim();
    net::FlowKey heavy{routing::ExternalHostIp(0), routing::RackServerIp(0, 0),
                       1234, 80, net::IpProto::kUdp};
    for (int i = 0; i < 150; ++i) {
      auto pkt = net::MakeUdpPacket(heavy, 0);
      pkt.vlan = 1;
      s.tb->agg[0]->HandlePacket(std::move(pkt), 0);
      sim.RunUntil(sim.Now() + Microseconds(30));
    }
    sim.RunUntil(sim.Now() + Milliseconds(5));

    // Fail the switch; the recovered count comes from the store snapshot
    // (RedPlane) or restarts from zero (plain).
    s.injector->FailNode(s.tb->agg[0]);
    sim.RunUntil(sim.Now() + Milliseconds(10));
    std::uint64_t recovered = 0;
    if (redplane) {
      const auto* rec = s.tb->store[0]->Find(net::PartitionKey::OfVlan(1));
      if (rec != nullptr) {
        for (const auto& [idx, slot] : rec->snapshot_slots) {
          net::ByteReader r(slot.first);
          recovered += r.U32();
        }
      }
    }
    auto& field = redplane ? impact.with_redplane : impact.without_redplane;
    if (recovered >= 140) {
      field = "statistics recovered (" + std::to_string(recovered) +
              "/150 updates)";
    } else {
      field = "inaccurate detection (statistics lost: " +
              std::to_string(recovered) + "/150)";
    }
  }
  return impact;
}

/// KV store: stored values after failover.
Impact KvImpact() {
  Impact impact;
  for (bool redplane : {false, true}) {
    Scenario s;
    s.Build();
    apps::KvStoreApp kv;
    if (redplane) {
      s.deploy.DeployRedPlane(kv, s.RpConfig());
    } else {
      s.deploy.DeployPlain(kv);
    }
    s.PinToAgg0();
    auto& sim = s.deploy.sim();
    std::uint64_t read_value = 0;
    int replies = 0;
    s.tb->external[0]->SetHandler([&](sim::HostNode&, net::Packet pkt) {
      net::ByteReader r(pkt.payload);
      r.U8();
      r.U64();
      read_value = r.U64();
      ++replies;
    });
    net::FlowKey client{routing::ExternalHostIp(0),
                        routing::RackServerIp(0, 0), 3333, apps::kKvUdpPort,
                        net::IpProto::kUdp};
    s.tb->external[0]->Send(
        apps::MakeKvPacket(client, {apps::KvOp::kUpdate, 7, 4242}));
    sim.RunUntil(sim.Now() + Milliseconds(100));

    if (redplane) s.ArmForensics();
    s.FailOver();
    s.tb->external[0]->Send(
        apps::MakeKvPacket(client, {apps::KvOp::kRead, 7, 0}));
    sim.RunUntil(sim.Now() + Milliseconds(300));
    auto& field = redplane ? impact.with_redplane : impact.without_redplane;
    if (replies >= 2 && read_value == 4242) {
      field = "key-value pair preserved";
    } else {
      field = "key-value pair lost (read returned " +
              std::to_string(read_value) + ")";
    }
    if (redplane) impact.recovery_timeline = s.TimelineText();
  }
  return impact;
}

}  // namespace

int main() {
  std::printf("=== Table 1: impact of switch failure, demonstrated ===\n\n");
  TablePrinter table({"Application", "Without RedPlane", "With RedPlane"});
  const Impact fw = FirewallImpact();
  table.Row({"Stateful firewall", fw.without_redplane, fw.with_redplane});
  const Impact sgw = SgwImpact();
  table.Row({"EPC-SGW", sgw.without_redplane, sgw.with_redplane});
  const Impact hh = HeavyHitterImpact();
  table.Row({"HH detection", hh.without_redplane, hh.with_redplane});
  const Impact kv = KvImpact();
  table.Row({"In-network KV store", kv.without_redplane, kv.with_redplane});
  std::printf("\n(The NAT/load-balancer rows are exercised end to end by "
              "the nat_failover example and the Fig. 14 bench.)\n");

  // With-RedPlane failover decomposition per application: downtime maps to
  // the configured failure-detection delay (5 ms) plus the lease period
  // (50 ms), as in the paper's recovery model.
  std::printf("\n=== Recovery decomposition (With RedPlane; detection 5 ms, "
              "lease 50 ms) ===\n");
  const std::pair<const char*, const Impact*> rows[] = {
      {"Stateful firewall", &fw}, {"EPC-SGW", &sgw}, {"In-network KV", &kv}};
  for (const auto& [name, impact] : rows) {
    if (impact->recovery_timeline.empty()) continue;
    std::printf("\n%s:\n%s", name, impact->recovery_timeline.c_str());
  }
  return 0;
}
