// Ablations of RedPlane's design choices (not a paper figure; quantifies
// the trade-offs §5 argues for):
//
//  1. Lease period — shorter leases migrate state faster after a failure
//     (recovery is bounded by detection + remaining lease) but cost more
//     renewal traffic for read-centric flows.
//  2. Retransmission timeout — under loss, a shorter timeout recovers
//     in-flight writes faster at the cost of more spurious retransmissions
//     and higher mirror occupancy.
//  3. Mirror truncation — buffering only the replication header (the
//     paper's choice) vs. mirroring the full request including the
//     piggybacked packet: same reliability, an order of magnitude more
//     switch packet buffer.
#include <cstdio>

#include "harness.h"

using namespace redplane;
using namespace redplane::bench;

namespace {

/// Ablation 1: lease period vs. failover gap and renewal overhead.
void LeasePeriodAblation() {
  std::printf("-- Ablation 1: lease period --\n");
  TablePrinter table({"Lease period (ms)", "Failover gap (ms)",
                      "Renewals per 100 pkts"});
  for (SimDuration lease : {Milliseconds(20), Milliseconds(50),
                            Milliseconds(100), Milliseconds(250),
                            Milliseconds(500)}) {
    Deployment deploy;
    routing::TestbedConfig config;
    config.store.lease_period = lease;
    config.fabric.failure_detection_delay = Milliseconds(10);
    deploy.Build(config);
    auto& tb = deploy.testbed();
    auto& sim = deploy.sim();

    apps::SyncCounterApp app;
    core::RedPlaneConfig rp;
    rp.lease_period = lease;
    rp.renew_interval = lease / 2;
    deploy.DeployRedPlane(app, rp);

    std::vector<SimTime> arrivals;
    tb.rack_servers[0][0]->SetHandler(
        [&](sim::HostNode&, net::Packet) { arrivals.push_back(sim.Now()); });
    net::FlowKey flow{routing::ExternalHostIp(0), routing::RackServerIp(0, 0),
                      1000, 80, net::IpProto::kUdp};

    // Steady 1 kpps stream; fail the carrying switch at t=100 ms.
    for (int i = 0; i < 100; ++i) {
      sim.ScheduleAt(Milliseconds(i), [&tb, flow]() {
        tb.external[0]->Send(net::MakeUdpPacket(flow, 64));
      });
    }
    routing::FailureInjector injector(sim, *tb.fabric);
    dp::SwitchNode* carrier =
        *tb.fabric->NextHop(tb.core, net::MakeUdpPacket(flow, 64)) == 0
            ? tb.agg[0]
            : tb.agg[1];
    sim.ScheduleAt(Milliseconds(50),
                   [&injector, carrier]() { injector.FailNode(carrier); });
    sim.RunUntil(Milliseconds(100) + 4 * lease);

    // Failover gap: the largest inter-arrival around the failure.
    SimDuration gap = 0;
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      gap = std::max(gap, arrivals[i] - arrivals[i - 1]);
    }
    const double renewals = deploy.redplane(0)->stats().Get("renewals_sent") +
                            deploy.redplane(1)->stats().Get("renewals_sent");
    table.Row({FormatDouble(static_cast<double>(lease) / kMillisecond, 0),
               FormatDouble(static_cast<double>(gap) / kMillisecond, 1),
               FormatDouble(renewals, 0)});
  }
  std::printf("\n");
}

/// Ablation 2: retransmission timeout under loss.
void RetransmitTimeoutAblation() {
  std::printf("-- Ablation 2: retransmission timeout (10%% request loss) --\n");
  TablePrinter table({"Timeout (us)", "Write p99 (us)", "Retransmits",
                      "Peak mirror (B)"});
  for (SimDuration timeout : {Microseconds(100), Microseconds(300),
                              Microseconds(1000), Microseconds(3000)}) {
    Deployment deploy;
    routing::TestbedConfig config;
    deploy.Build(config);
    auto& tb = deploy.testbed();
    auto& sim = deploy.sim();
    routing::FailureInjector injector(sim, *tb.fabric);
    injector.FailNode(tb.agg[1]);
    sim.RunUntil(Seconds(1));
    for (std::size_t i = 0; i < tb.network->NumLinks(); ++i) {
      sim::Link* link = tb.network->GetLink(i);
      if (link->endpoint_a() == tb.agg[0] || link->endpoint_b() == tb.agg[0]) {
        if (link->endpoint_a() == tb.tor[0] ||
            link->endpoint_b() == tb.tor[0]) {
          link->set_loss_rate(0.10);
        }
      }
    }

    apps::SyncCounterApp app;
    core::RedPlaneConfig rp;
    rp.request_timeout = timeout;
    rp.retx_scan_interval = timeout / 3;
    deploy.DeployRedPlane(app, rp);

    RttProbe probe(tb.external[0]);
    InstallEcho(tb.rack_servers[0][0]);
    // Sparse writes: one write per flow per ~10 ms.  (A back-to-back write
    // stream self-heals without retransmission — a later full-state write
    // subsumes a lost one — so sparse flows are what exercise the timeout.)
    SimTime t = sim.Now();
    for (int i = 0; i < 3000; ++i) {
      t += Microseconds(20);
      net::FlowKey flow{routing::ExternalHostIp(0),
                        routing::RackServerIp(0, 0),
                        static_cast<std::uint16_t>(1000 + i % 500), 80,
                        net::IpProto::kUdp};
      sim.ScheduleAt(t, [&probe, flow]() { probe.Send(flow, 40); });
    }
    sim.RunUntil(t + Milliseconds(100));
    table.Row(
        {FormatDouble(ToMicroseconds(timeout), 0),
         probe.rtt_us().Empty() ? "-"
                                : FormatDouble(probe.rtt_us().Percentile(99), 1),
         FormatDouble(deploy.redplane(0)->stats().Get("retransmits"), 0),
         FormatDouble(
             static_cast<double>(tb.agg[0]->mirror().PeakOccupancyBytes()),
             0)});
  }
  std::printf("\n");
}

/// Ablation 3: mirror truncation (header-only vs full packet).
void TruncationAblation() {
  std::printf("-- Ablation 3: mirror truncation --\n");
  TablePrinter table({"Mirrored bytes/request", "Peak mirror buffer (KB)"});
  for (std::size_t truncate : {std::size_t{128}, std::size_t{16384}}) {
    Deployment deploy;
    deploy.Build();
    auto& tb = deploy.testbed();
    auto& sim = deploy.sim();
    routing::FailureInjector injector(sim, *tb.fabric);
    injector.FailNode(tb.agg[1]);
    sim.RunUntil(Seconds(1));

    apps::SyncCounterApp app;
    core::RedPlaneConfig rp;
    rp.mirror_truncate_bytes = truncate;
    rp.mirror_include_piggyback = truncate > 1024;  // the "full" variant
    deploy.DeployRedPlane(app, rp);
    net::FlowKey flow{routing::ExternalHostIp(0), routing::RackServerIp(0, 0),
                      1000, 80, net::IpProto::kUdp};
    SimTime t = sim.Now();
    for (int i = 0; i < 2000; ++i) {
      t += Microseconds(2);
      sim.ScheduleAt(t, [&tb, flow]() {
        tb.external[0]->Send(net::MakeUdpPacket(flow, 1400));
      });
    }
    sim.RunUntil(t + Milliseconds(50));
    table.Row({std::to_string(truncate),
               FormatDouble(static_cast<double>(
                                tb.agg[0]->mirror().PeakOccupancyBytes()) /
                                1024.0,
                            2)});
  }
  std::printf("\n(Header-only mirroring is why a lost request costs only "
              "the output packet — permitted by the\nlinearizability model — "
              "while the state update itself is still retransmitted.)\n");
}

}  // namespace

int main() {
  std::printf("=== Design ablations ===\n\n");
  LeasePeriodAblation();
  RetransmitTimeoutAblation();
  TruncationAblation();
  return 0;
}
